package grb

import (
	"testing"
	"testing/quick"
)

func TestMatrixApply(t *testing.T) {
	m := build4(t)
	out := MatrixApply(NewSerialContext(), func(v int64) int64 { return v * 10 }, m)
	if v, _ := out.ExtractElement(2, 3); v != 50 {
		t.Fatalf("applied value = %d", v)
	}
	if v, _ := m.ExtractElement(2, 3); v != 5 {
		t.Fatal("apply mutated input")
	}
}

func TestEWiseMatrixUnionIntersection(t *testing.T) {
	ctx := NewSerialContext()
	a, _ := BuildMatrix(2, 3, []int{0, 0, 1}, []int{0, 1, 2}, []int64{1, 2, 3}, nil)
	b, _ := BuildMatrix(2, 3, []int{0, 1, 1}, []int{1, 0, 2}, []int64{10, 20, 30}, nil)
	plus := func(x, y int64) int64 { return x + y }

	sum, err := EWiseAddMatrix(ctx, plus, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// a and b overlap at (0,1) and (1,2): |A∪B| = 3 + 3 - 2 = 4.
	if sum.NVals() != 4 {
		t.Fatalf("union nvals = %d, want 4", sum.NVals())
	}
	if v, _ := sum.ExtractElement(0, 1); v != 12 {
		t.Fatalf("union overlap = %d, want 12", v)
	}
	if v, _ := sum.ExtractElement(1, 0); v != 20 {
		t.Fatalf("union b-only = %d", v)
	}

	prod, err := EWiseMultMatrix(ctx, plus, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.NVals() != 2 {
		t.Fatalf("intersection nvals = %d, want 2", prod.NVals())
	}
	if err := prod.Check(); err != nil {
		t.Fatal(err)
	}

	if _, err := EWiseAddMatrix(ctx, plus, a, build4(t)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestEWiseMatrixProperty(t *testing.T) {
	// Union pattern size == |A| + |B| - |A∩B|; intersection ⊆ both.
	f := func(sa, sb uint16) bool {
		ctx := NewSerialContext()
		a := randomMatrix(12, 40, uint64(sa)+1)
		b := randomMatrix(12, 40, uint64(sb)+500)
		plus := func(x, y int64) int64 { return x + y }
		u, err := EWiseAddMatrix(ctx, plus, a, b)
		if err != nil {
			return false
		}
		m, err := EWiseMultMatrix(ctx, plus, a, b)
		if err != nil {
			return false
		}
		return u.NVals() == a.NVals()+b.NVals()-m.NVals() &&
			u.Check() == nil && m.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractSubvector(t *testing.T) {
	ctx := NewSerialContext()
	u := NewVector[int64](6, Dense)
	u.SetElement(1, 10)
	u.SetElement(4, 40)
	w, err := ExtractSubvector(ctx, u, []int{4, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 3 || w.NVals() != 2 {
		t.Fatalf("subvector shape: size=%d nvals=%d", w.Size(), w.NVals())
	}
	if v, _ := w.ExtractElement(0); v != 40 {
		t.Fatalf("w[0] = %d", v)
	}
	if _, ok := w.ExtractElement(1); ok {
		t.Fatal("w[1] should be implicit")
	}
	if _, err := ExtractSubvector(ctx, u, []int{9}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestExtractSubmatrix(t *testing.T) {
	ctx := NewSerialContext()
	m := build4(t) // entries (0,1)=1 (0,2)=2 (1,2)=3 (2,0)=4 (2,3)=5
	sub, err := ExtractSubmatrix(ctx, m, []int{2, 0}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NRows() != 2 || sub.NCols() != 2 {
		t.Fatalf("sub dims %dx%d", sub.NRows(), sub.NCols())
	}
	// Row 0 of sub = row 2 of m restricted to cols {0,2}: only (2,0)=4.
	if v, ok := sub.ExtractElement(0, 0); !ok || v != 4 {
		t.Fatalf("sub(0,0) = %d,%v", v, ok)
	}
	// Row 1 of sub = row 0 of m: (0,2)=2 maps to col 1.
	if v, ok := sub.ExtractElement(1, 1); !ok || v != 2 {
		t.Fatalf("sub(1,1) = %d,%v", v, ok)
	}
	if err := sub.Check(); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractSubmatrix(ctx, m, []int{9}, []int{0}); err == nil {
		t.Fatal("bad row accepted")
	}
}

func TestKroneckerIdentity(t *testing.T) {
	ctx := NewSerialContext()
	// I2 ⊗ A = block diagonal [A 0; 0 A].
	i2, _ := BuildMatrix(2, 2, []int{0, 1}, []int{0, 1}, []int64{1, 1}, nil)
	a := build4(t)
	k := Kronecker(ctx, PlusTimes[int64](), i2, a)
	if k.NRows() != 8 || k.NCols() != 8 {
		t.Fatalf("kron dims %dx%d", k.NRows(), k.NCols())
	}
	if k.NVals() != 2*a.NVals() {
		t.Fatalf("kron nvals = %d", k.NVals())
	}
	if err := k.Check(); err != nil {
		t.Fatal(err)
	}
	v1, _ := a.ExtractElement(2, 3)
	v2, ok := k.ExtractElement(4+2, 4+3)
	if !ok || v1 != v2 {
		t.Fatalf("kron block mismatch: %d vs %d", v1, v2)
	}
	if _, ok := k.ExtractElement(0, 5); ok {
		t.Fatal("off-block entry present")
	}
}

func TestKroneckerMatchesRMATExpansion(t *testing.T) {
	// kron of a 2x2 seed with itself has the RMAT recursion's pattern size.
	ctx := NewSerialContext()
	seed, _ := BuildMatrix(2, 2, []int{0, 0, 1}, []int{0, 1, 1}, []int64{1, 1, 1}, nil)
	k := Kronecker(ctx, PlusTimes[int64](), seed, seed)
	if k.NVals() != 9 {
		t.Fatalf("kron^2 nvals = %d, want 9", k.NVals())
	}
}
