package grb

import (
	"graphstudy/internal/galois"
	"graphstudy/internal/trace"
)

// This file holds the composite kernels the fusion planner (internal/fuse)
// lowers matched DAG windows onto. Each kernel replaces a chain of eager
// grb calls with a single (or two-phase) traversal, eliding the chain's
// intermediate materializations: mask bitmaps, alias snapshots, densified
// copies, and the entry lists the eager schedule would have produced and
// immediately consumed.
//
// The contract, enforced by internal/verify's fused differential suite, is
// bit-identity: a fused kernel must produce exactly the bytes the eager
// chain would have, on every executor and worker count. Three rules make
// that hold:
//
//   - Embedded SpMVs go through the same spmvPush/spmvPull code as VxM,
//     selected by the shared vxmUsePull heuristic (float addition folds in
//     a kernel-specific order, so the *choice* must match too).
//   - Parallel phases follow the PR 4 blocking discipline: per-block
//     partials stitched in ascending block order, or in-place writes to
//     positions owned by exactly one loop iteration.
//   - In-place updates of a vector's dense value slots require the vector
//     to be FullyDense, so the presence bitmap — whose words straddle
//     block boundaries — is never written concurrently.
//
// Kernels report runtime applicability as a bool: false means a
// precondition only checkable at execution time (representation, density,
// aliasing) failed and the caller must fall back to the eager chain. The
// fallback produces identical results — fusion here is purely an
// optimization, never a semantic change.

// FusedStats reports what a fused kernel saved and touched, for the
// executor's fused-category trace span.
type FusedStats struct {
	// Elided counts bytes of intermediate materializations the eager chain
	// would have allocated and this kernel did not: mask bitmaps, alias
	// snapshots (Dup), densified copies, and intermediate entry lists.
	Elided int64
	// NNZIn / NNZOut are the chain's input and output nonzeros.
	NNZIn  int64
	NNZOut int64
}

// bitmapBytes is the materialized size of an n-position presence bitmap or
// mask pattern, matching the accounting Convert and AssignConstant use.
func bitmapBytes(n int) int64 { return int64(n+7) / 8 }

// FusedAssignExpand fuses the BFS round body
//
//	AssignConstant(dist<struct(frontier)> = level)
//	VxM(frontier<!value(dist)> = frontier ⊗ A, lor_land, replace)
//
// into one pass over the frontier: phase A stamps the level at every
// frontier position, phase B expands frontier rows collecting neighbors the
// (complemented value) mask admits — i.e. positions whose dist value is
// still zero. No mask bitmap, assign entry list, or alias snapshot is ever
// built. Unlike FusedBFSStep there is no discovery CAS: the two phases
// preserve the eager chain's pure window semantics exactly, so the result
// is the same for any T, semiring aside (the pattern is only matched for
// lor_land, where duplicate discoveries fold to the same value anyway).
//
// dist must be FullyDense (reported via the applied return); frontier may
// be any representation and is replaced with the next frontier.
func FusedAssignExpand[T comparable](ctx *Context, dist *Vector[T], level T, frontier *Vector[bool], A *Matrix[bool]) (FusedStats, bool, error) {
	var stats FusedStats
	n := A.NRows()
	if dist.n != n || frontier.n != A.ncols {
		return stats, false, errDim("FusedAssignExpand", dist.n, n)
	}
	if !dist.FullyDense() || aliasAny(dist, frontier) {
		return stats, false, nil
	}
	sp := trace.Begin(trace.CatKernel, "grb.FusedAssignExpand")
	defer sp.End()
	sp.Workers = int64(ctx.threads())

	fIdx, _ := frontier.Entries() // ascending copies; frontier itself is rewritten below
	nf := len(fIdx)
	sp.NNZIn = int64(nf)
	stats.NNZIn = int64(nf)
	var zero T
	block := ctx.blockFor(nf)

	// Phase A: stamp the level at frontier positions. Disjoint dense slots,
	// no presence writes (dist is fully dense), so blocks race-free.
	galois.ForBlocks(ctx.Ex, nf, block, func(b, lo, hi int, gctx *galois.Ctx) {
		for k := lo; k < hi; k++ {
			dist.dense[fIdx[k]] = level
		}
		gctx.Work(int64(hi - lo))
	})

	// Phase B: expand. The ForBlocks barrier above guarantees every stamp
	// is visible; dist is read-only from here, exactly like the eager VxM
	// reading a mask built after the assign completed.
	parts := make([]entryList[bool], galois.NumBlocks(nf, block))
	galois.ForBlocks(ctx.Ex, nf, block, func(b, lo, hi int, gctx *galois.Ctx) {
		out := &parts[b]
		var work int64
		for k := lo; k < hi; k++ {
			cols, _ := A.Row(fIdx[k])
			work += int64(len(cols))
			for _, j := range cols {
				if dist.dense[j] == zero {
					out.idx = append(out.idx, j)
					out.vals = append(out.vals, true)
				}
			}
		}
		gctx.Work(work)
	})
	e := stitch(parts)
	// Canonicalize to the sorted deduplicated set the eager push
	// accumulator produces.
	sortEntries(e.idx, e.vals)
	m := 0
	for k := range e.idx {
		if k > 0 && e.idx[k] == e.idx[m-1] {
			continue
		}
		e.idx[m], e.vals[m] = e.idx[k], e.vals[k]
		m++
	}
	e.idx, e.vals = e.idx[:m], e.vals[:m]

	sp.NNZOut = int64(m)
	sp.Bytes = entryBytes[bool](m)
	stats.NNZOut = int64(m)
	// Eager would materialize: the struct mask of the frontier and the
	// complemented value mask of dist (one bitmap each), the assign's entry
	// list over the frontier, and VxM's alias snapshot of the frontier.
	stats.Elided = 2*bitmapBytes(n) + entryBytes[T](nf) + entryBytes[bool](nf)
	mergeIntoVector(frontier, e, nil, true)
	return stats, true, nil
}

// FusedVxMApply fuses
//
//	VxM(w = u ⊗ A, s, replace)
//	Apply(w = op(w), replace)
//
// by mapping op over the SpMV's entry list before the single merge into w,
// skipping the intermediate merge, Apply's alias snapshot of w, and the
// re-traversal entry list. Legal for any representation of w — the final
// merge commits exactly the entries the eager pair would.
func FusedVxMApply[T any](ctx *Context, w *Vector[T], s Semiring[T], u *Vector[T], A *Matrix[T], op UnaryOp[T], desc Desc) (FusedStats, bool, error) {
	var stats FusedStats
	if u.n != A.nrows {
		return stats, false, errDim("FusedVxMApply u", u.n, A.nrows)
	}
	if w.n != A.ncols {
		return stats, false, errDim("FusedVxMApply w", w.n, A.ncols)
	}
	u = unalias(w, u)
	usePull := vxmUsePull(nil, u, A, desc)
	name := "grb.FusedVxMApply.push"
	if usePull {
		name = "grb.FusedVxMApply.pull"
	}
	sp := trace.Begin(trace.CatKernel, name)
	defer sp.End()
	sp.NNZIn = int64(u.NVals())
	sp.Workers = int64(ctx.threads())
	stats.NNZIn = int64(u.NVals())

	var e entryList[T]
	if usePull {
		e = spmvPull(ctx, nil, s, u, A, true)
	} else {
		e = spmvPush(ctx, nil, s, u, A, true)
	}
	galois.ForBlocks(ctx.Ex, len(e.vals), ctx.blockFor(len(e.vals)), func(b, lo, hi int, gctx *galois.Ctx) {
		for k := lo; k < hi; k++ {
			e.vals[k] = op(e.vals[k])
		}
		gctx.Work(int64(hi - lo))
	})
	sp.NNZOut = int64(len(e.idx))
	sp.Bytes = entryBytes[T](len(e.idx))
	stats.NNZOut = int64(len(e.idx))
	// Eager would materialize: Apply's alias snapshot of w (w holds the
	// SpMV result by then) and Apply's output entry list. The intermediate
	// merge into w is saved too but overlaps the final merge byte-for-byte,
	// so only the snapshot is counted.
	if w.rep == Dense {
		stats.Elided = int64(w.n)*elemBytes[T]() + bitmapBytes(w.n) + entryBytes[T](len(e.idx))
	} else {
		stats.Elided = 2 * entryBytes[T](len(e.idx))
	}
	mergeIntoVector(w, e, nil, desc.Replace)
	return stats, true, nil
}

// FusedFoldScale fuses the two full-width residual passes of PageRank —
//
//	EWiseAdd(w1 = addOp(w1, x))            // pr += res
//	EWiseMult(w2 = mulOp(x, y), replace)   // contrib = res * invdeg
//
// — into one blocked pass reading x and y once, the exact fusion
// opportunity the study's section V names as inexpressible in the bulk
// matrix API. Eager evaluation snapshots both EWiseAdd operands (two
// full-width Dups) and produces two n-entry lists; the fused pass writes
// both outputs in place.
//
// x may be partially dense (after the first iteration PageRank's residual
// only has entries at columns with in-edges): positions without an x entry
// keep w1's value and leave w2 empty, exactly the union/intersection
// semantics of the eager pair. Requires w1 and y fully dense and x, w2
// Dense, all with w1, w2 distinct from everything — reported via the
// applied return, falling back to the eager pair otherwise.
func FusedFoldScale[T any](ctx *Context, w1 *Vector[T], addOp BinaryOp[T], x, y, w2 *Vector[T], mulOp BinaryOp[T]) (FusedStats, bool, error) {
	var stats FusedStats
	n := w1.n
	if x.n != n || y.n != n || w2.n != n {
		return stats, false, errDim("FusedFoldScale", x.n, n)
	}
	if !w1.FullyDense() || !y.FullyDense() || x.rep != Dense || w2.rep != Dense ||
		aliasAny(w1, x) || aliasAny(w1, y) || aliasAny(w1, w2) ||
		aliasAny(w2, x) || aliasAny(w2, y) {
		return stats, false, nil
	}
	sp := trace.Begin(trace.CatKernel, "grb.FusedFoldScale")
	defer sp.End()
	nx := x.NVals()
	sp.NNZIn = int64(n + nx)
	sp.NNZOut = int64(n + nx)
	sp.Workers = int64(ctx.threads())

	// Parallel phase: value slots only. w1 keeps its (full) pattern; w2's
	// slots outside x's pattern are zeroed like the eager replace-merge's
	// Clear would. The presence bitmaps are read, never written — their
	// words straddle block boundaries.
	var zero T
	galois.ForBlocks(ctx.Ex, n, ctx.blockFor(n), func(b, lo, hi int, gctx *galois.Ctx) {
		for i := lo; i < hi; i++ {
			if x.present.get(i) {
				xi := x.dense[i]
				w1.dense[i] = addOp(w1.dense[i], xi)
				w2.dense[i] = mulOp(xi, y.dense[i])
			} else {
				w2.dense[i] = zero
			}
		}
		gctx.Work(int64(hi - lo))
	})
	// w2's pattern becomes x's pattern (the eager intersection with fully
	// dense y), committed serially after the barrier.
	copy(w2.present, x.present)
	w2.ndense = nx
	stats.NNZIn = int64(n + nx)
	stats.NNZOut = int64(n + nx)
	// Eager would materialize: EWiseAdd's two full-width operand snapshots,
	// its n-entry union list, and EWiseMult's entry list over x's pattern.
	stats.Elided = 2*(int64(n)*elemBytes[T]()+bitmapBytes(n)) + entryBytes[T](n) + entryBytes[T](nx)
	return stats, true, nil
}

// FusedRelax fuses the delta-stepping light-edge relaxation chain
//
//	q = VxM(u ⊗ A, min_plus, replace)                 // tentative offers
//	imp = EWiseMult(ltOp(q, t), replace)              // strictly better?
//	t = EWiseAdd(minOp(t, q))                         // commit improvements
//	next = Select(keep(q))<value(imp)> (replace)      // next light frontier
//
// into the SpMV plus a single pass over its entry list: per offer, read the
// old tentative distance, decide improvement, write the min in place, and
// emit the entry into the next frontier if it improved and keep admits it.
// The offers list q is deduplicated and index-sorted (a property of both
// SpMV kernels), so every entry owns its position and in-place writes to t
// are race-free and order-independent — matching the eager chain, which
// reads all of t (snapshot) before writing any of it.
//
// Requires t fully dense, u and next distinct from t — reported via the
// applied return. q and imp are never materialized; the caller must have
// proven them dead after the chain.
func FusedRelax[T comparable](ctx *Context, next, t *Vector[T], s Semiring[T], u *Vector[T], A *Matrix[T], ltOp, minOp BinaryOp[T], keep IndexedPredicate[T], desc Desc) (FusedStats, bool, error) {
	var stats FusedStats
	if u.n != A.nrows {
		return stats, false, errDim("FusedRelax u", u.n, A.nrows)
	}
	if t.n != A.ncols || next.n != A.ncols {
		return stats, false, errDim("FusedRelax t", t.n, A.ncols)
	}
	if !t.FullyDense() || aliasAny(t, u) || aliasAny(t, next) || aliasAny(u, next) {
		return stats, false, nil
	}
	usePull := vxmUsePull(nil, u, A, desc)
	name := "grb.FusedRelax.push"
	if usePull {
		name = "grb.FusedRelax.pull"
	}
	sp := trace.Begin(trace.CatKernel, name)
	defer sp.End()
	sp.NNZIn = int64(u.NVals())
	sp.Workers = int64(ctx.threads())
	stats.NNZIn = int64(u.NVals())

	var e entryList[T]
	if usePull {
		e = spmvPull(ctx, nil, s, u, A, true)
	} else {
		e = spmvPush(ctx, nil, s, u, A, true)
	}
	var zero T
	block := ctx.blockFor(len(e.idx))
	parts := make([]entryList[T], galois.NumBlocks(len(e.idx), block))
	galois.ForBlocks(ctx.Ex, len(e.idx), block, func(b, lo, hi int, gctx *galois.Ctx) {
		out := &parts[b]
		for k := lo; k < hi; k++ {
			i := e.idx[k]
			v := e.vals[k]
			told := t.dense[i]
			improved := ltOp(v, told) != zero
			t.dense[i] = minOp(told, v)
			if improved && keep(v, int(i), 0) {
				out.idx = append(out.idx, i)
				out.vals = append(out.vals, v)
			}
		}
		gctx.Work(int64(hi - lo))
	})
	ne := stitch(parts)
	sp.NNZOut = int64(len(ne.idx))
	sp.Bytes = entryBytes[T](len(ne.idx))
	stats.NNZOut = int64(len(ne.idx))
	nq := len(e.idx)
	n := t.n
	// Eager would materialize: the q and imp vectors (one entry list copy
	// each), imp's value-mask bitmap, EWiseAdd's two full-width operand
	// snapshots (q is densified for the union pass), and EWiseAdd's n-entry
	// output list.
	stats.Elided = 2*entryBytes[T](nq) + bitmapBytes(n) +
		2*(int64(n)*elemBytes[T]()+bitmapBytes(n)) + entryBytes[T](n)
	mergeIntoVector(next, ne, nil, true)
	return stats, true, nil
}

// FusedVxMAccum fuses
//
//	q = VxM(u ⊗ A, s, replace)   // q a dead temporary
//	t = EWiseAdd(op(t, q))
//
// by folding the SpMV's entry list straight into t's dense slots, skipping
// q, EWiseAdd's two full-width snapshots, and its n-entry output list.
// Positions outside q's pattern keep their value, which the eager union
// pass rewrites unchanged — unobservable. Requires t fully dense and
// distinct from u.
func FusedVxMAccum[T any](ctx *Context, t *Vector[T], op BinaryOp[T], s Semiring[T], u *Vector[T], A *Matrix[T], desc Desc) (FusedStats, bool, error) {
	var stats FusedStats
	if u.n != A.nrows {
		return stats, false, errDim("FusedVxMAccum u", u.n, A.nrows)
	}
	if t.n != A.ncols {
		return stats, false, errDim("FusedVxMAccum t", t.n, A.ncols)
	}
	if !t.FullyDense() || aliasAny(t, u) {
		return stats, false, nil
	}
	usePull := vxmUsePull(nil, u, A, desc)
	name := "grb.FusedVxMAccum.push"
	if usePull {
		name = "grb.FusedVxMAccum.pull"
	}
	sp := trace.Begin(trace.CatKernel, name)
	defer sp.End()
	sp.NNZIn = int64(u.NVals())
	sp.Workers = int64(ctx.threads())
	stats.NNZIn = int64(u.NVals())

	var e entryList[T]
	if usePull {
		e = spmvPull(ctx, nil, s, u, A, true)
	} else {
		e = spmvPush(ctx, nil, s, u, A, true)
	}
	galois.ForBlocks(ctx.Ex, len(e.idx), ctx.blockFor(len(e.idx)), func(b, lo, hi int, gctx *galois.Ctx) {
		for k := lo; k < hi; k++ {
			i := e.idx[k]
			t.dense[i] = op(t.dense[i], e.vals[k])
		}
		gctx.Work(int64(hi - lo))
	})
	sp.NNZOut = int64(len(e.idx))
	stats.NNZOut = int64(len(e.idx))
	n := t.n
	// Eager would materialize: the q vector (entry list copy), EWiseAdd's
	// two full-width snapshots (q densified for the union pass), and its
	// n-entry output list.
	stats.Elided = entryBytes[T](len(e.idx)) +
		2*(int64(n)*elemBytes[T]()+bitmapBytes(n)) + entryBytes[T](n)
	return stats, true, nil
}
