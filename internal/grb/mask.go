package grb

// Mask filters which output positions an operation may write, the analog of
// the GraphBLAS mask parameter. Complement inverts the filter; Structural
// masks consider any explicit entry as true, while value masks were built
// from entries with a non-"zero" value (see ValueMask).
//
// The Replace semantics of GrB_DESC_R are a property of the operation call
// (see Desc), not of the mask itself.
type Mask struct {
	n       int
	pattern bitmap
	// Complement makes the mask allow positions *not* in the pattern.
	Complement bool
}

// allows reports whether writes to position i pass the mask. A nil mask
// allows everything.
func (m *Mask) allows(i int) bool {
	if m == nil {
		return true
	}
	return m.pattern.get(i) != m.Complement
}

// Count returns how many positions the mask allows.
func (m *Mask) Count() int {
	if m == nil {
		return -1
	}
	c := m.pattern.count()
	if m.Complement {
		return m.n - c
	}
	return c
}

// Comp returns a complemented copy of the mask (GrB_DESC_C / GrB_DESC_SC).
func (m *Mask) Comp() *Mask {
	return &Mask{n: m.n, pattern: m.pattern, Complement: !m.Complement}
}

// StructMask builds a structural mask from the explicit entries of v
// (GrB_DESC_S: entry present means position allowed).
func StructMask[T any](v *Vector[T]) *Mask {
	m := &Mask{n: v.Size(), pattern: newBitmap(v.Size())}
	v.ForEach(func(i int, _ T) { m.pattern.set(i) })
	return m
}

// ValueMask builds a value mask from v: positions whose explicit value is
// non-zero (in Go terms, != the zero value of T) are allowed. This matches
// how LAGraph bfs masks with its dist vector, whose explicit zeros mean
// "unvisited".
func ValueMask[T comparable](v *Vector[T]) *Mask {
	var zero T
	m := &Mask{n: v.Size(), pattern: newBitmap(v.Size())}
	v.ForEach(func(i int, val T) {
		if val != zero {
			m.pattern.set(i)
		}
	})
	return m
}

// Desc collects the descriptor flags of an operation call (GrB_Descriptor).
type Desc struct {
	// Replace clears the output's previous entries outside the mask
	// (GrB_DESC_R). Without it, unwritten positions keep their old values.
	Replace bool
	// Force overrides the push/pull heuristic of VxM/MxV, the analog of
	// SuiteSparse's GxB_AxB_METHOD hint. The pure-pull BFS variant uses it
	// to expose the materialization cost the heuristic normally avoids.
	Force KernelHint
}

// KernelHint selects an SpMV kernel explicitly.
type KernelHint uint8

const (
	// HintAuto lets the density/mask heuristics choose.
	HintAuto KernelHint = iota
	// HintPush forces the SAXPY kernel (expand source entries).
	HintPush
	// HintPull forces the SDOT kernel (dot every output position),
	// densifying the source vector if needed.
	HintPull
)
