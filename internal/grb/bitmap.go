package grb

import "math/bits"

// bitmap is a fixed-size bit set used for dense-vector presence tracking and
// masks.
type bitmap []uint64

func newBitmap(n int) bitmap { return make(bitmap, (n+63)/64) }

func (b bitmap) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitmap) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitmap) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

func (b bitmap) reset() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitmap) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls fn for every set bit in ascending order.
func (b bitmap) forEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}

// forEachIn calls fn for every set bit in [lo, hi) in ascending order; the
// blocked kernels use it to scan a mask block without touching absent bits.
func (b bitmap) forEachIn(lo, hi int, fn func(i int)) {
	if lo >= hi {
		return
	}
	for wi := lo >> 6; wi <= (hi-1)>>6; wi++ {
		w := b[wi]
		base := wi << 6
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			i := base + bit
			if i >= hi {
				return
			}
			if i >= lo {
				fn(i)
			}
			w &= w - 1
		}
	}
}

func (b bitmap) clone() bitmap {
	out := make(bitmap, len(b))
	copy(out, b)
	return out
}
