package grb

import "math/bits"

// bitmap is a fixed-size bit set used for dense-vector presence tracking and
// masks.
type bitmap []uint64

func newBitmap(n int) bitmap { return make(bitmap, (n+63)/64) }

func (b bitmap) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitmap) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitmap) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

func (b bitmap) reset() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitmap) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls fn for every set bit in ascending order.
func (b bitmap) forEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}

func (b bitmap) clone() bitmap {
	out := make(bitmap, len(b))
	copy(out, b)
	return out
}
