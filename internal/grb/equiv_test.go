package grb

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// workersFlag narrows the worker counts the equivalence layer sweeps: 0
// keeps the default {1, 2, 4, 7}; a positive value tests {1, N}. CI's
// test-parallel job passes -grb.workers=4.
var workersFlag = flag.Int("grb.workers", 0, "worker count for kernel equivalence tests (0 = sweep 1,2,4,7)")

func equivWorkerCounts() []int {
	if *workersFlag > 0 {
		return []int{1, *workersFlag}
	}
	return []int{1, 2, 4, 7}
}

// parallelContexts returns one kernel context per scheduling policy and
// worker count under test. The serial context is the reference all of them
// must match bit-for-bit.
func parallelContexts() map[string]*Context {
	out := map[string]*Context{}
	for _, w := range equivWorkerCounts() {
		out[fmt.Sprintf("static-%d", w)] = NewSuiteSparseContext(w)
		out[fmt.Sprintf("steal-%d", w)] = NewGaloisBLASContext(w)
	}
	return out
}

// bitsOf maps a kernel element to its exact bit pattern, so float comparisons
// distinguish results that merely round the same way when printed.
func bitsOf(v any) uint64 {
	switch x := v.(type) {
	case float64:
		return math.Float64bits(x)
	case float32:
		return uint64(math.Float32bits(x))
	case uint32:
		return uint64(x)
	case uint64:
		return x
	case int32:
		return uint64(uint32(x))
	case int64:
		return uint64(x)
	case bool:
		if x {
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("bitsOf: unsupported %T", v))
}

func mustEqualVectors[T any](t *testing.T, label string, want, got *Vector[T]) {
	t.Helper()
	wi, wv := want.Entries()
	gi, gv := got.Entries()
	if len(wi) != len(gi) {
		t.Fatalf("%s: %d entries, want %d", label, len(gi), len(wi))
	}
	for k := range wi {
		if wi[k] != gi[k] {
			t.Fatalf("%s: entry %d at index %d, want index %d", label, k, gi[k], wi[k])
		}
		if bitsOf(any(gv[k])) != bitsOf(any(wv[k])) {
			t.Fatalf("%s: value at %d = %v (bits %x), want %v (bits %x)",
				label, wi[k], gv[k], bitsOf(any(gv[k])), wv[k], bitsOf(any(wv[k])))
		}
	}
}

func mustEqualMatrices[T any](t *testing.T, label string, want, got *Matrix[T]) {
	t.Helper()
	if err := got.Check(); err != nil {
		t.Fatalf("%s: invalid result: %v", label, err)
	}
	wr, wc, wv := want.Tuples()
	gr, gc, gv := got.Tuples()
	if len(wr) != len(gr) {
		t.Fatalf("%s: %d entries, want %d", label, len(gr), len(wr))
	}
	for k := range wr {
		if wr[k] != gr[k] || wc[k] != gc[k] {
			t.Fatalf("%s: entry %d at (%d,%d), want (%d,%d)", label, k, gr[k], gc[k], wr[k], wc[k])
		}
		if bitsOf(any(gv[k])) != bitsOf(any(wv[k])) {
			t.Fatalf("%s: value at (%d,%d) bits %x, want %x",
				label, wr[k], wc[k], bitsOf(any(gv[k])), bitsOf(any(wv[k])))
		}
	}
}

// randMatrix builds a random nrows x ncols matrix with about nnz entries.
func randMatrix[T any](r *rand.Rand, nrows, ncols, nnz int, val func(*rand.Rand) T) *Matrix[T] {
	rows := make([]int, nnz)
	cols := make([]int, nnz)
	vals := make([]T, nnz)
	for k := 0; k < nnz; k++ {
		rows[k] = r.Intn(nrows)
		cols[k] = r.Intn(ncols)
		vals[k] = val(r)
	}
	m, err := BuildMatrix(nrows, ncols, rows, cols, vals, nil)
	if err != nil {
		panic(err)
	}
	return m
}

// heavyRowMatrix puts roughly half of all entries in row 0: the single-row-
// dominated shape that defeats static partitioning and exercises stealing.
func heavyRowMatrix[T any](r *rand.Rand, n, nnz int, val func(*rand.Rand) T) *Matrix[T] {
	rows := make([]int, nnz)
	cols := make([]int, nnz)
	vals := make([]T, nnz)
	for k := 0; k < nnz; k++ {
		if k < nnz/2 {
			rows[k] = 0
		} else {
			rows[k] = r.Intn(n)
		}
		cols[k] = r.Intn(n)
		vals[k] = val(r)
	}
	m, err := BuildMatrix(n, n, rows, cols, vals, nil)
	if err != nil {
		panic(err)
	}
	return m
}

func randVector[T any](r *rand.Rand, n, nvals int, rep Rep, val func(*rand.Rand) T) *Vector[T] {
	v := NewVector[T](n, rep)
	for k := 0; k < nvals; k++ {
		v.SetElement(r.Intn(n), val(r))
	}
	return v
}

// randMask allows about density of the n positions; complement inverts it.
func randMask(r *rand.Rand, n int, density float64, complement bool) *Mask {
	sel := NewVector[bool](n, List)
	for i := 0; i < n; i++ {
		if r.Float64() < density {
			sel.SetElement(i, true)
		}
	}
	m := StructMask(sel)
	m.Complement = complement
	return m
}

func randFloat(r *rand.Rand) float64 {
	// Mixed magnitudes so float addition order matters; the equivalence
	// tests would pass vacuously with benign values.
	return (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(12)-6))
}

func randWeight(r *rand.Rand) uint32 { return uint32(r.Intn(1000)) + 1 }

func randBool(r *rand.Rand) bool { return true }

// spmvCase runs one (op, hint) spmv configuration on every parallel context
// and demands bit-identical results against the serial reference.
func spmvCase[T any](t *testing.T, label string, s Semiring[T], A *Matrix[T], u *Vector[T], mask *Mask, accum BinaryOp[T], desc Desc, w0 *Vector[T], mxv bool) {
	t.Helper()
	run := func(ctx *Context) *Vector[T] {
		w := w0.Dup()
		var err error
		if mxv {
			err = MxV(ctx, w, mask, accum, s, A, u, desc)
		} else {
			err = VxM(ctx, w, mask, accum, s, u, A, desc)
		}
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return w
	}
	want := run(NewSerialContext())
	for name, ctx := range parallelContexts() {
		mustEqualVectors(t, label+"/"+name, want, run(ctx))
	}
}

func TestEquivSpMVFloat64(t *testing.T) {
	s := PlusTimes[float64]()
	for seed := int64(0); seed < 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 150 + r.Intn(200)
		A := randMatrix(r, n, n, n*6, randFloat)
		A.EnsureCSC()
		reps := []Rep{Dense, Sorted, List}
		u := randVector(r, n, n/2, reps[int(seed)%3], randFloat)
		masks := []*Mask{nil, randMask(r, n, 0.4, false), randMask(r, n, 0.3, true)}
		mask := masks[int(seed)%3]
		var accum BinaryOp[float64]
		if seed%2 == 1 {
			accum = func(a, b float64) float64 { return a + b }
		}
		w0 := randVector(r, n, n/4, Sorted, randFloat)
		for _, hint := range []KernelHint{HintPush, HintPull} {
			desc := Desc{Replace: seed%2 == 0, Force: hint}
			label := fmt.Sprintf("seed%d/hint%d", seed, hint)
			spmvCase(t, label+"/mxv", s, A, u, mask, accum, desc, w0, true)
			spmvCase(t, label+"/vxm", s, A, u, mask, accum, desc, w0, false)
		}
	}
}

func TestEquivSpMVMinPlusUint32(t *testing.T) {
	s := MinPlus[uint32]()
	r := rand.New(rand.NewSource(7))
	n := 300
	A := randMatrix(r, n, n, n*5, randWeight)
	A.EnsureCSC()
	u := randVector(r, n, n/3, Sorted, randWeight)
	w0 := NewVector[uint32](n, Sorted)
	for _, hint := range []KernelHint{HintPush, HintPull} {
		spmvCase(t, fmt.Sprintf("minplus/hint%d", hint), s, A, u, nil, nil,
			Desc{Replace: true, Force: hint}, w0, true)
	}
}

func TestEquivSpMVBool(t *testing.T) {
	s := LorLand()
	r := rand.New(rand.NewSource(11))
	n := 400
	A := randMatrix(r, n, n, n*4, randBool)
	A.EnsureCSC()
	u := randVector(r, n, n/8, List, randBool)
	mask := randMask(r, n, 0.5, true)
	w0 := NewVector[bool](n, List)
	for _, hint := range []KernelHint{HintPush, HintPull} {
		spmvCase(t, fmt.Sprintf("bool/hint%d", hint), s, A, u, mask, nil,
			Desc{Replace: true, Force: hint}, w0, false)
	}
}

// TestEquivSpMVEdgeCases covers the inputs most likely to break blocking
// logic: an empty operand, a mask that filters everything, and a matrix
// whose nonzeros concentrate in one row.
func TestEquivSpMVEdgeCases(t *testing.T) {
	s := PlusTimes[float64]()
	r := rand.New(rand.NewSource(23))
	n := 257
	A := randMatrix(r, n, n, n*5, randFloat)
	A.EnsureCSC()
	w0 := NewVector[float64](n, Sorted)

	empty := NewVector[float64](n, Sorted)
	full := NewVector[bool](n, List)
	for i := 0; i < n; i++ {
		full.SetElement(i, true)
	}
	allMasked := StructMask(full)
	allMasked.Complement = true

	u := randVector(r, n, n/2, Dense, randFloat)
	heavy := heavyRowMatrix(r, n, n*6, randFloat)
	heavy.EnsureCSC()

	for _, hint := range []KernelHint{HintPush, HintPull} {
		desc := Desc{Replace: true, Force: hint}
		spmvCase(t, fmt.Sprintf("empty-u/hint%d", hint), s, A, empty, nil, nil, desc, w0, true)
		spmvCase(t, fmt.Sprintf("all-masked/hint%d", hint), s, A, u, allMasked, nil, desc, w0, true)
		spmvCase(t, fmt.Sprintf("heavy-row/hint%d", hint), s, heavy, u, nil, nil, desc, w0, true)
		spmvCase(t, fmt.Sprintf("heavy-row-vxm/hint%d", hint), s, heavy, u, nil, nil, desc, w0, false)
	}
}

func TestEquivVecOps(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		n := 200 + r.Intn(300)
		reps := []Rep{Dense, Sorted, List}
		u := randVector(r, n, n/2, reps[int(seed)%3], randFloat)
		v := randVector(r, n, n/3, reps[int(seed+1)%3], randFloat)
		mask := randMask(r, n, 0.5, seed%2 == 0)
		w0 := randVector(r, n, n/4, Sorted, randFloat)
		idxVec := randVector(r, n, n/2, Sorted, func(r *rand.Rand) uint32 { return uint32(r.Intn(n)) })
		plus := func(a, b float64) float64 { return a + b }

		type vecOp struct {
			name string
			run  func(ctx *Context) *Vector[float64]
		}
		ops := []vecOp{
			{"ewiseadd", func(ctx *Context) *Vector[float64] {
				w := w0.Dup()
				if err := EWiseAdd(ctx, w, mask, plus, plus, u, v, Desc{}); err != nil {
					t.Fatal(err)
				}
				return w
			}},
			{"ewisemult", func(ctx *Context) *Vector[float64] {
				w := w0.Dup()
				if err := EWiseMult(ctx, w, mask, nil, plus, u, v, Desc{Replace: true}); err != nil {
					t.Fatal(err)
				}
				return w
			}},
			{"apply", func(ctx *Context) *Vector[float64] {
				w := w0.Dup()
				if err := Apply(ctx, w, mask, plus, func(a float64) float64 { return a * 1.5 }, u, Desc{}); err != nil {
					t.Fatal(err)
				}
				return w
			}},
			{"select", func(ctx *Context) *Vector[float64] {
				w := w0.Dup()
				pred := func(v float64, i, j int) bool { return v > 0 }
				if err := SelectVector(ctx, w, mask, pred, u, Desc{Replace: true}); err != nil {
					t.Fatal(err)
				}
				return w
			}},
			{"assign", func(ctx *Context) *Vector[float64] {
				w := w0.Dup()
				if err := AssignConstant(ctx, w, mask, plus, 2.5, Desc{}); err != nil {
					t.Fatal(err)
				}
				return w
			}},
			{"gather", func(ctx *Context) *Vector[float64] {
				w := w0.Dup()
				if err := Gather(ctx, w, u, idxVec, Desc{Replace: true}); err != nil {
					t.Fatal(err)
				}
				return w
			}},
		}
		for _, op := range ops {
			want := op.run(NewSerialContext())
			for name, ctx := range parallelContexts() {
				mustEqualVectors(t, fmt.Sprintf("seed%d/%s/%s", seed, op.name, name), want, op.run(ctx))
			}
		}

		wantSum := ReduceVector(NewSerialContext(), PlusMonoid[float64](), u)
		for name, ctx := range parallelContexts() {
			if got := ReduceVector(ctx, PlusMonoid[float64](), u); math.Float64bits(got) != math.Float64bits(wantSum) {
				t.Fatalf("seed%d/reduce/%s: %x, want %x", seed, name,
					math.Float64bits(got), math.Float64bits(wantSum))
			}
		}
	}
}

func TestEquivMatrixReduce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 300
	A := heavyRowMatrix(r, n, n*7, randFloat)
	wantRows := ReduceRows(NewSerialContext(), PlusMonoid[float64](), A)
	wantAll := ReduceMatrix(NewSerialContext(), PlusMonoid[float64](), A)
	for name, ctx := range parallelContexts() {
		mustEqualVectors(t, "reducerows/"+name, wantRows, ReduceRows(ctx, PlusMonoid[float64](), A))
		if got := ReduceMatrix(ctx, PlusMonoid[float64](), A); math.Float64bits(got) != math.Float64bits(wantAll) {
			t.Fatalf("reducematrix/%s: %x, want %x", name, math.Float64bits(got), math.Float64bits(wantAll))
		}
	}
}

func TestEquivMxM(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n := 120
	A := randMatrix(r, n, n, n*5, randFloat)
	B := randMatrix(r, n, n, n*5, randFloat)
	mask := randMatrix(r, n, n, n*8, randFloat).Pattern()
	s := PlusTimes[float64]()
	for _, k := range []MxMKernel{KernelGustavson, KernelHash, KernelDot} {
		var m *Pattern
		if k == KernelDot {
			m = mask
		}
		run := func(ctx *Context) *Matrix[float64] {
			ctx.Kernel = k
			C, err := MxM(ctx, m, s, A, B)
			if err != nil {
				t.Fatal(err)
			}
			return C
		}
		want := run(NewSerialContext())
		for name, ctx := range parallelContexts() {
			mustEqualMatrices(t, fmt.Sprintf("%v/%s", k, name), want, run(ctx))
		}
	}
}

func TestEquivFusedBFSStep(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	n := 500
	A := randMatrix(r, n, n, n*6, randBool)
	run := func(ctx *Context) (*Vector[int32], *Vector[bool]) {
		dist := NewVector[int32](n, Dense)
		dist.SetElement(0, 1)
		frontier := NewVector[bool](n, List)
		frontier.SetElement(0, true)
		next, err := FusedBFSStep(ctx, dist, frontier, A, 2)
		if err != nil {
			t.Fatal(err)
		}
		return dist, next
	}
	wantDist, wantNext := run(NewSerialContext())
	for name, ctx := range parallelContexts() {
		gotDist, gotNext := run(ctx)
		mustEqualVectors(t, "fused-dist/"+name, wantDist, gotDist)
		mustEqualVectors(t, "fused-next/"+name, wantNext, gotNext)
	}
}
