package grb

import (
	"graphstudy/internal/galois"
	"graphstudy/internal/perfmodel"
	"graphstudy/internal/trace"
)

// VxM computes w<mask> = u' * A under the semiring (GrB_vxm):
// w(j) = ⊕_i mul(u(i), A(i,j)) over u's explicit entries.
//
// Two kernels implement it, mirroring the push/pull duality of section II-C:
//
//   - push (SAXPY): iterate u's entries, scattering each row of A into
//     per-worker dense accumulators that are merged afterwards. Chosen for
//     sparse u (a small frontier).
//   - pull (SDOT): iterate output positions, taking a dot product of u with
//     A's column via the CSC mirror. Chosen when u is dense or the mask
//     bounds the output tightly.
func VxM[T any](ctx *Context, w *Vector[T], mask *Mask, accum BinaryOp[T], s Semiring[T], u *Vector[T], A *Matrix[T], desc Desc) error {
	if u.n != A.nrows {
		return errDim("VxM u", u.n, A.nrows)
	}
	if w.n != A.ncols {
		return errDim("VxM w", w.n, A.ncols)
	}
	if mask != nil && mask.n != w.n {
		return errDim("VxM mask", mask.n, w.n)
	}
	u = unalias(w, u)
	usePull := vxmUsePull(mask, u, A, desc)
	op := "grb.VxM.push"
	if usePull {
		op = "grb.VxM.pull"
	}
	sp := trace.Begin(trace.CatKernel, op)
	defer sp.End()
	sp.NNZIn = int64(u.NVals())
	sp.Workers = int64(ctx.threads())
	var e entryList[T]
	if usePull {
		e = spmvPull(ctx, mask, s, u, A, true)
	} else {
		e = spmvPush(ctx, mask, s, u, A, true)
	}
	sp.NNZOut = int64(len(e.idx))
	sp.Bytes = entryBytes[T](len(e.idx))
	mergeIntoVector(w, e, accum, desc.Replace)
	return nil
}

// MxV computes w<mask> = A * u under the semiring (GrB_mxv):
// w(i) = ⊕_j mul(A(i,j), u(j)).
//
// The natural kernel iterates rows of A (a pull over CSR); a push kernel
// over u's entries via the CSC mirror is used for very sparse u.
func MxV[T any](ctx *Context, w *Vector[T], mask *Mask, accum BinaryOp[T], s Semiring[T], A *Matrix[T], u *Vector[T], desc Desc) error {
	if u.n != A.ncols {
		return errDim("MxV u", u.n, A.ncols)
	}
	if w.n != A.nrows {
		return errDim("MxV w", w.n, A.nrows)
	}
	if mask != nil && mask.n != w.n {
		return errDim("MxV mask", mask.n, w.n)
	}
	u = unalias(w, u)
	usePush := A.HasCSC() && u.rep != Dense && u.NVals() < A.nrows/16
	switch desc.Force {
	case HintPush:
		usePush = true
	case HintPull:
		usePush = false
	}
	op := "grb.MxV.pull"
	if usePush {
		op = "grb.MxV.push"
	}
	sp := trace.Begin(trace.CatKernel, op)
	defer sp.End()
	sp.NNZIn = int64(u.NVals())
	sp.Workers = int64(ctx.threads())
	var e entryList[T]
	if usePush {
		e = spmvPush(ctx, mask, s, u, A, false)
	} else {
		e = spmvPull(ctx, mask, s, u, A, false)
	}
	sp.NNZOut = int64(len(e.idx))
	sp.Bytes = entryBytes[T](len(e.idx))
	mergeIntoVector(w, e, accum, desc.Replace)
	return nil
}

// vxmUsePull is VxM's kernel-selection heuristic, split out so the fused
// composite kernels (fusedchains.go) pick the exact same kernel as an eager
// VxM would for the same inputs. Float addition folds in a different order
// under push vs pull, so fused results stay bit-identical to eager only if
// this choice is shared.
func vxmUsePull[T any](mask *Mask, u *Vector[T], A *Matrix[T], desc Desc) bool {
	usePull := A.HasCSC() && (u.rep == Dense && u.NVals() > A.nrows/16 ||
		mask != nil && !mask.Complement && mask.Count() < u.NVals())
	switch desc.Force {
	case HintPush:
		usePull = false
	case HintPull:
		usePull = true
	}
	return usePull
}

// spmvPush is the SAXPY kernel. For VxM (alongRows=true) it expands row
// A(i,:) for every u(i); for MxV (alongRows=false) it expands column A(:,j)
// for every u(j) via CSC.
//
// Determinism: the frontier is cut into fixed blocks (a function of its
// length alone); each block scatters into a worker-private dense accumulator
// whose contents are extracted, sorted, per block; the block partials are
// then folded in ascending block order. The add monoid is applied in an
// order fixed by the blocking, never by the schedule, so float results are
// bit-identical across executors and worker counts.
func spmvPush[T any](ctx *Context, mask *Mask, s Semiring[T], u *Vector[T], A *Matrix[T], alongRows bool) entryList[T] {
	n := A.ncols
	if !alongRows {
		n = A.nrows
		A.EnsureCSC()
	}
	uIdx, uVals := u.Entries()
	if len(uIdx) == 0 {
		return entryList[T]{}
	}
	c := perfmodel.Get()
	// Workers lazily allocate one reusable dense accumulator each; partial
	// results are indexed by block so the merge order below is fixed.
	accs := make([]*pushAcc[T], ctx.threads())
	block := ctx.blockFor(len(uIdx))
	parts := make([]entryList[T], galois.NumBlocks(len(uIdx), block))
	galois.ForBlocks(ctx.Ex, len(uIdx), block, func(b, lo, hi int, gctx *galois.Ctx) {
		a := accs[gctx.TID]
		if a == nil {
			a = newPushAcc[T](n)
			//lint:ignore sharedwrite worker-local scratch cache: slot TID is only ever touched by its own worker and never feeds the output (parts is block-indexed)
			accs[gctx.TID] = a
		}
		var work int64
		for k := lo; k < hi; k++ {
			i := uIdx[k]
			x := uVals[k]
			var cols []int32
			var vals []T
			if alongRows {
				cols, vals = A.Row(i)
			} else {
				cols, vals = A.Col(i)
			}
			work += int64(len(cols))
			if c != nil {
				c.Load(A.slot, perfmodel.KRowPtr, i, 8)
				c.LoadRange(A.slot, perfmodel.KColIdx, 0, len(cols), 4)
				c.LoadRange(A.slot, perfmodel.KVals, 0, len(vals), 8)
				c.Load(u.slot, perfmodel.KVecVals, i, 8)
				c.Instr(2 * len(cols))
			}
			for e2, j := range cols {
				if !mask.allows(int(j)) {
					continue
				}
				// Operand order follows the operation: VxM multiplies
				// u(i)*A(i,j), MxV multiplies A(i,j)*u(j). Non-commutative
				// semirings (min_second) depend on it.
				var p T
				if alongRows {
					p = s.Mul(x, vals[e2])
				} else {
					p = s.Mul(vals[e2], x)
				}
				a.add(j, p, s.Add.Op)
				if c != nil {
					c.Store(0, perfmodel.KAux, int(j), 8)
				}
			}
		}
		parts[b] = a.take()
		gctx.Work(work)
	})
	if len(parts) == 1 {
		return parts[0]
	}
	// Ordered reduction: fold block partials in ascending block order into a
	// fresh accumulator. Serial, but over the (small) touched sets only.
	final := newPushAcc[T](n)
	for _, part := range parts {
		for k, j := range part.idx {
			final.add(j, part.vals[k], s.Add.Op)
		}
	}
	return final.take()
}

// spmvPull is the SDOT kernel. For VxM (alongCols=true) it walks column
// A(:,j) for each output j via CSC; for MxV it walks row A(i,:) for each
// output i. u is densified once so probes are O(1).
func spmvPull[T any](ctx *Context, mask *Mask, s Semiring[T], u *Vector[T], A *Matrix[T], alongCols bool) entryList[T] {
	n := A.ncols
	if !alongCols {
		n = A.nrows
	} else {
		A.EnsureCSC()
	}
	ud := u
	if ud.rep != Dense {
		ud = u.Dup()
		ud.Convert(Dense)
	}
	c := perfmodel.Get()
	// Each output position's dot product is self-contained, so per-block
	// output lists stitched in block order are not just schedule-independent
	// but blocking-independent too (the metamorphic tests exploit this).
	return blockedEntries(ctx, n, func(lo, hi int, gctx *galois.Ctx, part *entryList[T]) {
		var work int64
		for j := lo; j < hi; j++ {
			if !mask.allows(j) {
				continue
			}
			var rows []int32
			var vals []T
			if alongCols {
				rows, vals = A.Col(j)
			} else {
				rows, vals = A.Row(j)
			}
			work += int64(len(rows))
			if c != nil {
				c.Load(A.slot, perfmodel.KRowPtr, j, 8)
				c.LoadRange(A.slot, perfmodel.KColIdx, 0, len(rows), 4)
				c.LoadRange(A.slot, perfmodel.KVals, 0, len(vals), 8)
				c.Instr(2 * len(rows))
			}
			acc := s.Add.Identity
			hit := false
			for e2, i := range rows {
				if !ud.present.get(int(i)) {
					continue
				}
				var p T
				if alongCols {
					p = s.Mul(ud.dense[i], vals[e2])
				} else {
					p = s.Mul(vals[e2], ud.dense[i])
				}
				if c != nil {
					c.Load(ud.slot, perfmodel.KVecVals, int(i), 8)
				}
				if !hit {
					acc, hit = p, true
				} else {
					acc = s.Add.Op(acc, p)
				}
				if s.Add.Terminal != nil && any(acc) == any(*s.Add.Terminal) {
					break
				}
			}
			if hit {
				part.idx = append(part.idx, int32(j))
				part.vals = append(part.vals, acc)
			}
		}
		gctx.Work(work)
	})
}
