package grb

import (
	"graphstudy/internal/galois"
	"graphstudy/internal/perfmodel"
	"graphstudy/internal/trace"
)

// VxM computes w<mask> = u' * A under the semiring (GrB_vxm):
// w(j) = ⊕_i mul(u(i), A(i,j)) over u's explicit entries.
//
// Two kernels implement it, mirroring the push/pull duality of section II-C:
//
//   - push (SAXPY): iterate u's entries, scattering each row of A into
//     per-worker dense accumulators that are merged afterwards. Chosen for
//     sparse u (a small frontier).
//   - pull (SDOT): iterate output positions, taking a dot product of u with
//     A's column via the CSC mirror. Chosen when u is dense or the mask
//     bounds the output tightly.
func VxM[T any](ctx *Context, w *Vector[T], mask *Mask, accum BinaryOp[T], s Semiring[T], u *Vector[T], A *Matrix[T], desc Desc) error {
	if u.n != A.nrows {
		return errDim("VxM u", u.n, A.nrows)
	}
	if w.n != A.ncols {
		return errDim("VxM w", w.n, A.ncols)
	}
	if mask != nil && mask.n != w.n {
		return errDim("VxM mask", mask.n, w.n)
	}
	usePull := A.HasCSC() && (u.rep == Dense && u.NVals() > A.nrows/16 ||
		mask != nil && !mask.Complement && mask.Count() < u.NVals())
	switch desc.Force {
	case HintPush:
		usePull = false
	case HintPull:
		usePull = true
	}
	op := "grb.VxM.push"
	if usePull {
		op = "grb.VxM.pull"
	}
	sp := trace.Begin(trace.CatKernel, op)
	defer sp.End()
	sp.NNZIn = int64(u.NVals())
	var e entryList[T]
	if usePull {
		e = spmvPull(ctx, mask, s, u, A, true)
	} else {
		e = spmvPush(ctx, mask, s, u, A, true)
	}
	sp.NNZOut = int64(len(e.idx))
	sp.Bytes = entryBytes[T](len(e.idx))
	mergeIntoVector(w, e, accum, desc.Replace)
	return nil
}

// MxV computes w<mask> = A * u under the semiring (GrB_mxv):
// w(i) = ⊕_j mul(A(i,j), u(j)).
//
// The natural kernel iterates rows of A (a pull over CSR); a push kernel
// over u's entries via the CSC mirror is used for very sparse u.
func MxV[T any](ctx *Context, w *Vector[T], mask *Mask, accum BinaryOp[T], s Semiring[T], A *Matrix[T], u *Vector[T], desc Desc) error {
	if u.n != A.ncols {
		return errDim("MxV u", u.n, A.ncols)
	}
	if w.n != A.nrows {
		return errDim("MxV w", w.n, A.nrows)
	}
	if mask != nil && mask.n != w.n {
		return errDim("MxV mask", mask.n, w.n)
	}
	usePush := A.HasCSC() && u.rep != Dense && u.NVals() < A.nrows/16
	switch desc.Force {
	case HintPush:
		usePush = true
	case HintPull:
		usePush = false
	}
	op := "grb.MxV.pull"
	if usePush {
		op = "grb.MxV.push"
	}
	sp := trace.Begin(trace.CatKernel, op)
	defer sp.End()
	sp.NNZIn = int64(u.NVals())
	var e entryList[T]
	if usePush {
		e = spmvPush(ctx, mask, s, u, A, false)
	} else {
		e = spmvPull(ctx, mask, s, u, A, false)
	}
	sp.NNZOut = int64(len(e.idx))
	sp.Bytes = entryBytes[T](len(e.idx))
	mergeIntoVector(w, e, accum, desc.Replace)
	return nil
}

// spmvPush is the SAXPY kernel. For VxM (alongRows=true) it expands row
// A(i,:) for every u(i); for MxV (alongRows=false) it expands column A(:,j)
// for every u(j) via CSC. Each worker accumulates into a private dense
// buffer; buffers merge under the add monoid afterwards.
func spmvPush[T any](ctx *Context, mask *Mask, s Semiring[T], u *Vector[T], A *Matrix[T], alongRows bool) entryList[T] {
	n := A.ncols
	if !alongRows {
		n = A.nrows
		A.EnsureCSC()
	}
	uIdx, uVals := u.Entries()
	t := ctx.threads()
	type acc struct {
		vals  []T
		mark  []int32
		touch []int32
	}
	accs := make([]*acc, t)
	c := perfmodel.Get()
	ctx.Ex.ForRange(len(uIdx), 0, func(lo, hi int, gctx *galois.Ctx) {
		a := accs[gctx.TID]
		if a == nil {
			// mark uses 0 = empty so the fresh zeroed allocation needs no
			// initialization pass.
			a = &acc{vals: make([]T, n), mark: make([]int32, n)}
			accs[gctx.TID] = a
		}
		var work int64
		for k := lo; k < hi; k++ {
			i := uIdx[k]
			x := uVals[k]
			var cols []int32
			var vals []T
			if alongRows {
				cols, vals = A.Row(i)
			} else {
				cols, vals = A.Col(i)
			}
			work += int64(len(cols))
			if c != nil {
				c.Load(A.slot, perfmodel.KRowPtr, i, 8)
				c.LoadRange(A.slot, perfmodel.KColIdx, 0, len(cols), 4)
				c.LoadRange(A.slot, perfmodel.KVals, 0, len(vals), 8)
				c.Load(u.slot, perfmodel.KVecVals, i, 8)
				c.Instr(2 * len(cols))
			}
			for e2, j := range cols {
				if !mask.allows(int(j)) {
					continue
				}
				p := s.Mul(x, vals[e2])
				if a.mark[j] == 0 {
					a.mark[j] = 1
					a.vals[j] = p
					a.touch = append(a.touch, j)
				} else {
					a.vals[j] = s.Add.Op(a.vals[j], p)
				}
				if c != nil {
					c.Store(0, perfmodel.KAux, int(j), 8)
				}
			}
		}
		gctx.Work(work)
	})
	// Merge worker accumulators (serial: the touched sets are small relative
	// to the expansion work, and merging needs the add monoid anyway).
	var out entryList[T]
	var first *acc
	for _, a := range accs {
		if a == nil {
			continue
		}
		if first == nil {
			first = a
			continue
		}
		for _, j := range a.touch {
			if first.mark[j] == 0 {
				first.mark[j] = 1
				first.vals[j] = a.vals[j]
				first.touch = append(first.touch, j)
			} else {
				first.vals[j] = s.Add.Op(first.vals[j], a.vals[j])
			}
		}
	}
	if first != nil {
		for _, j := range first.touch {
			out.idx = append(out.idx, j)
			out.vals = append(out.vals, first.vals[j])
		}
	}
	return out
}

// spmvPull is the SDOT kernel. For VxM (alongCols=true) it walks column
// A(:,j) for each output j via CSC; for MxV it walks row A(i,:) for each
// output i. u is densified once so probes are O(1).
func spmvPull[T any](ctx *Context, mask *Mask, s Semiring[T], u *Vector[T], A *Matrix[T], alongCols bool) entryList[T] {
	n := A.ncols
	if !alongCols {
		n = A.nrows
	} else {
		A.EnsureCSC()
	}
	ud := u
	if ud.rep != Dense {
		ud = u.Dup()
		ud.Convert(Dense)
	}
	c := perfmodel.Get()
	t := ctx.threads()
	parts := make([]entryList[T], t)
	ctx.Ex.ForRange(n, 0, func(lo, hi int, gctx *galois.Ctx) {
		part := &parts[gctx.TID]
		var work int64
		for j := lo; j < hi; j++ {
			if !mask.allows(j) {
				continue
			}
			var rows []int32
			var vals []T
			if alongCols {
				rows, vals = A.Col(j)
			} else {
				rows, vals = A.Row(j)
			}
			work += int64(len(rows))
			if c != nil {
				c.Load(A.slot, perfmodel.KRowPtr, j, 8)
				c.LoadRange(A.slot, perfmodel.KColIdx, 0, len(rows), 4)
				c.LoadRange(A.slot, perfmodel.KVals, 0, len(vals), 8)
				c.Instr(2 * len(rows))
			}
			acc := s.Add.Identity
			hit := false
			for e2, i := range rows {
				if !ud.present.get(int(i)) {
					continue
				}
				var p T
				if alongCols {
					p = s.Mul(ud.dense[i], vals[e2])
				} else {
					p = s.Mul(vals[e2], ud.dense[i])
				}
				if c != nil {
					c.Load(ud.slot, perfmodel.KVecVals, int(i), 8)
				}
				if !hit {
					acc, hit = p, true
				} else {
					acc = s.Add.Op(acc, p)
				}
				if s.Add.Terminal != nil && any(acc) == any(*s.Add.Terminal) {
					break
				}
			}
			if hit {
				part.idx = append(part.idx, int32(j))
				part.vals = append(part.vals, acc)
			}
		}
		gctx.Work(work)
	})
	var out entryList[T]
	for i := range parts {
		out.idx = append(out.idx, parts[i].idx...)
		out.vals = append(out.vals, parts[i].vals...)
	}
	return out
}
