package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"graphstudy/internal/perfmodel"
)

func TestDisabledSpanIsInert(t *testing.T) {
	Install(nil)
	sp := Begin(CatKernel, "noop")
	if sp.Enabled() {
		t.Fatal("span enabled with no trace installed")
	}
	sp.NNZIn = 42
	sp.End()
	sp.End() // double End must be safe
}

func TestRecordAndSummary(t *testing.T) {
	tr := New()
	for i := 0; i < 3; i++ {
		sp := tr.Begin(CatKernel, "grb.VxM")
		sp.NNZIn = 10
		sp.NNZOut = 5
		sp.Bytes = 100
		sp.End()
	}
	for r := 1; r <= 4; r++ {
		sp := tr.Begin(CatRound, "bfs.round")
		sp.Round = r
		sp.End()
	}
	init := tr.Begin(CatRound, "bfs.init")
	init.Round = 0
	init.End()

	s := tr.Summary()
	if s.Rounds != 4 {
		t.Fatalf("Rounds = %d, want 4 (round-0 init must not count)", s.Rounds)
	}
	if s.Events != 8 || s.Dropped != 0 {
		t.Fatalf("Events/Dropped = %d/%d, want 8/0", s.Events, s.Dropped)
	}
	st := s.Find(CatKernel, "grb.VxM")
	if st == nil {
		t.Fatal("no aggregate for grb.VxM")
	}
	if st.Count != 3 || st.NNZIn != 30 || st.NNZOut != 15 || st.Bytes != 300 {
		t.Fatalf("VxM aggregate = %+v", st)
	}
	if s.Bytes != 300 {
		t.Fatalf("Summary.Bytes = %d, want 300", s.Bytes)
	}
	if st.Max > st.Total {
		t.Fatalf("Max %v > Total %v", st.Max, st.Total)
	}
	if s.Find(CatRegion, "grb.VxM") != nil {
		t.Fatal("Find must match category, not just op")
	}
}

func TestSpanDurationMonotonic(t *testing.T) {
	tr := New()
	sp := tr.Begin(CatKernel, "sleep")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	st := tr.Summary().Find(CatKernel, "sleep")
	if st == nil || st.Total < 2*time.Millisecond {
		t.Fatalf("span did not capture sleep: %+v", st)
	}
}

func TestRingWrapKeepsAggregates(t *testing.T) {
	tr := NewWithCapacity(4)
	const n = 100
	for i := 0; i < n; i++ {
		sp := tr.Begin(CatKernel, "k")
		sp.Bytes = 1
		sp.End()
	}
	s := tr.Summary()
	if s.Events != n {
		t.Fatalf("Events = %d, want %d", s.Events, n)
	}
	if s.Dropped == 0 {
		t.Fatal("expected drops with capacity 4")
	}
	st := s.Find(CatKernel, "k")
	if st == nil || st.Count != n || st.Bytes != n {
		t.Fatalf("aggregate lost events on wrap: %+v", st)
	}
	retained := len(tr.Events())
	if int64(retained) != s.Events-s.Dropped {
		t.Fatalf("retained %d events, want %d", retained, s.Events-s.Dropped)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := NewWithCapacity(64)
	Install(tr)
	defer Install(nil)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := Begin(CatRegion, "parallel")
				sp.Items = 1
				sp.End()
				if i%16 == 0 {
					_ = tr.Summary() // summaries race with recording
					_ = tr.Events()
				}
			}
		}()
	}
	wg.Wait()
	s := tr.Summary()
	if s.Events != workers*per {
		t.Fatalf("Events = %d, want %d", s.Events, workers*per)
	}
	st := s.Find(CatRegion, "parallel")
	if st == nil || st.Count != workers*per || st.Items != workers*per {
		t.Fatalf("aggregate = %+v", st)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr := New()
	sp := tr.Begin(CatRound, "pr.round")
	sp.Round = 1
	sp.NNZIn = 7
	sp.Bytes = 88
	sp.End()
	k := tr.Begin(CatKernel, "grb.MxM")
	k.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
		if ev.Ph != "X" || ev.PID != 1 {
			t.Fatalf("bad event %+v", ev)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("negative time in %+v", ev)
		}
		if ev.Name == "pr.round" {
			if ev.Cat != "round" {
				t.Fatalf("cat = %q", ev.Cat)
			}
			if ev.Args["round"] != float64(1) || ev.Args["nnz_in"] != float64(7) || ev.Args["bytes"] != float64(88) {
				t.Fatalf("args = %v", ev.Args)
			}
		}
	}
	if !seen["pr.round"] || !seen["grb.MxM"] {
		t.Fatalf("missing events: %v", seen)
	}
}

func TestPerfmodelDeltasInSpans(t *testing.T) {
	tr := New()
	c := perfmodel.NewCollector(nil)
	perfmodel.Install(c)
	defer perfmodel.Install(nil)

	c.Instr(5) // before the span: must not be attributed to it
	sp := tr.Begin(CatKernel, "counted")
	c.Instr(10)
	c.Load(0, perfmodel.KVals, 0, 4)
	c.Store(0, perfmodel.KVals, 1, 4)
	c.Store(0, perfmodel.KVals, 2, 4)
	sp.End()
	c.Instr(100) // after the span: ditto

	st := tr.Summary().Find(CatKernel, "counted")
	if st == nil {
		t.Fatal("missing aggregate")
	}
	if st.Instr != 10 || st.Loads != 1 || st.Stores != 2 {
		t.Fatalf("counter deltas = instr %d loads %d stores %d", st.Instr, st.Loads, st.Stores)
	}
}

func TestWriteText(t *testing.T) {
	tr := New()
	sp := tr.Begin(CatKernel, "grb.Apply")
	sp.NNZOut = 12
	sp.End()
	var buf bytes.Buffer
	if err := tr.Summary().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"grb.Apply", "kernel", "rounds=0", "events=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}
