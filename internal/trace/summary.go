package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// OpStat aggregates every span of one (category, operator) pair. Unlike
// the event rings, aggregates are never dropped.
type OpStat struct {
	Cat   Cat
	Op    string
	Count int64
	Total time.Duration
	Max   time.Duration

	NNZIn  int64
	NNZOut int64
	Bytes  int64
	Items  int64
	Steals int64
	// Workers is the maximum worker count any span of this operator
	// reported (counts from different thread configurations don't add).
	Workers int64

	Instr  uint64
	Loads  uint64
	Stores uint64
}

// Summary is the in-memory sink: per-operator aggregates plus run-level
// roll-ups. It is attached to core.Result for traced runs.
type Summary struct {
	// Ops is sorted by total time, descending.
	Ops []OpStat
	// Rounds counts CatRound spans with Round >= 1 (init phases are
	// tagged round 0 and excluded).
	Rounds int
	// Bytes is the total bytes materialized across all spans. CatFused
	// spans are excluded: their Bytes field counts eliminated
	// materializations and accumulates in BytesElided instead.
	Bytes int64
	// BytesElided is the total intermediate bytes the fusion planner
	// avoided materializing (sum of CatFused span Bytes).
	BytesElided int64
	// RoundTotal is the summed duration of all CatRound spans including
	// init; for a single traced run it should tile the wall time.
	RoundTotal time.Duration
	// Events and Dropped count spans recorded and spans evicted from the
	// rings by wrap-around. Dropped > 0 means the Chrome export is
	// partial; the aggregates above are still complete.
	Events  int64
	Dropped int64
}

// Summary merges the per-shard aggregates into a sorted Summary. It may
// be called while the trace is still recording.
func (t *Trace) Summary() *Summary {
	merged := map[key]*OpStat{}
	s := &Summary{}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, st := range sh.agg {
			m := merged[k]
			if m == nil {
				cp := *st
				merged[k] = &cp
				continue
			}
			m.Count += st.Count
			m.Total += st.Total
			if st.Max > m.Max {
				m.Max = st.Max
			}
			m.NNZIn += st.NNZIn
			m.NNZOut += st.NNZOut
			m.Bytes += st.Bytes
			m.Items += st.Items
			m.Steals += st.Steals
			if st.Workers > m.Workers {
				m.Workers = st.Workers
			}
			m.Instr += st.Instr
			m.Loads += st.Loads
			m.Stores += st.Stores
		}
		s.Rounds += int(sh.rounds)
		s.Events += sh.recorded
		s.Dropped += sh.dropped
		sh.mu.Unlock()
	}
	for _, st := range merged {
		s.Ops = append(s.Ops, *st)
		if st.Cat == CatFused {
			s.BytesElided += st.Bytes
		} else {
			s.Bytes += st.Bytes
		}
		if st.Cat == CatRound {
			s.RoundTotal += st.Total
		}
	}
	sort.Slice(s.Ops, func(i, j int) bool {
		if s.Ops[i].Total != s.Ops[j].Total {
			return s.Ops[i].Total > s.Ops[j].Total
		}
		if s.Ops[i].Op != s.Ops[j].Op {
			return s.Ops[i].Op < s.Ops[j].Op
		}
		return s.Ops[i].Cat < s.Ops[j].Cat
	})
	return s
}

// Find returns the aggregate for (cat, op), or nil.
func (s *Summary) Find(cat Cat, op string) *OpStat {
	for i := range s.Ops {
		if s.Ops[i].Cat == cat && s.Ops[i].Op == op {
			return &s.Ops[i]
		}
	}
	return nil
}

// CatTotal sums the recorded time of every span in the category.
func (s *Summary) CatTotal(cat Cat) time.Duration {
	var total time.Duration
	for i := range s.Ops {
		if s.Ops[i].Cat == cat {
			total += s.Ops[i].Total
		}
	}
	return total
}

// CatBytes sums the materialized bytes of every span in the category.
func (s *Summary) CatBytes(cat Cat) int64 {
	var total int64
	for i := range s.Ops {
		if s.Ops[i].Cat == cat {
			total += s.Ops[i].Bytes
		}
	}
	return total
}

// WriteText renders the compact text report: one line per operator,
// hottest first, followed by run-level totals.
func (s *Summary) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-8s %-28s %8s %12s %12s %10s %10s %10s\n",
		"CAT", "OP", "COUNT", "TOTAL", "MAX", "NNZ-IN", "NNZ-OUT", "BYTES"); err != nil {
		return err
	}
	for _, st := range s.Ops {
		if _, err := fmt.Fprintf(w, "%-8s %-28s %8d %12s %12s %10d %10d %10d\n",
			st.Cat, st.Op, st.Count, round(st.Total), round(st.Max),
			st.NNZIn, st.NNZOut, st.Bytes); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "rounds=%d bytes=%d bytes-elided=%d round-time=%s events=%d dropped=%d\n",
		s.Rounds, s.Bytes, s.BytesElided, round(s.RoundTotal), s.Events, s.Dropped)
	return err
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}
