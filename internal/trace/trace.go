// Package trace is the operator-level tracing substrate for the study
// harness. A Trace records timed spans — grb kernels, galois parallel
// regions, algorithm rounds — into per-shard ring buffers with a shared
// monotonic epoch, and aggregates them incrementally so the summary stays
// complete even when a ring wraps.
//
// Tracing is designed to stay compiled into the hot paths: when no trace
// is installed, Begin performs a single atomic load and returns an inert
// span whose End is a no-op (see TestTraceOverhead in the repo root).
// Installation is global, mirroring perfmodel: profiled runs are expected
// to execute one at a time (graphd serializes workers when a trace
// directory is configured).
package trace

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphstudy/internal/perfmodel"
)

// Cat classifies a span by the layer that emitted it.
type Cat uint8

const (
	// CatKernel is a grb primitive: VxM, MxV, MxM, eWiseAdd/Mult, apply,
	// select, reduce, assign, extract, and dense materialization.
	CatKernel Cat = iota
	// CatRound is one algorithm round/iteration (a BFS level, a PageRank
	// iteration, an SSSP bucket). Round 0 is reserved for init phases so
	// that round spans tile a run's wall time.
	CatRound
	// CatRegion is a galois parallel region (Executor.ForRange / DoAll).
	CatRegion
	// CatLoop is a galois ForEach worklist loop.
	CatLoop
	// CatFused is a fusion-compiler step (internal/fuse): one span per
	// planned step, tagging the fusion decision. For fused steps Bytes
	// holds the intermediate bytes *elided* (materializations the eager
	// schedule would have allocated), not bytes written — Summary rolls
	// them into BytesElided instead of Bytes.
	CatFused
	// CatAdapt is a runtime-adaptation decision (internal/adapt): one span
	// per direction or representation choice, named for the outcome
	// ("adapt.direction.pull", "adapt.rep.bitmap"). NNZIn carries the
	// frontier nvals, NNZOut the vector dimension, and Items the measured
	// density in parts per million, so every decision is auditable per
	// round from the trace alone.
	CatAdapt
	// CatDelta is an incremental-computation step over a mutation delta
	// (internal/lagraph incremental variants): one span per reuse decision
	// or delta-scoped phase, named for what was reused or recomputed
	// ("delta.bfs.seed", "delta.cc.touched", "delta.pr.dirty",
	// "delta.fallback"). NNZIn carries the delta size driving the step,
	// NNZOut the work actually redone, so the trace alone shows how much of
	// a run the delta path saved.
	CatDelta
)

// String returns the category name used in Chrome trace output.
func (c Cat) String() string {
	switch c {
	case CatKernel:
		return "kernel"
	case CatRound:
		return "round"
	case CatRegion:
		return "region"
	case CatLoop:
		return "loop"
	case CatFused:
		return "fused"
	case CatAdapt:
		return "adapt"
	case CatDelta:
		return "delta"
	}
	return "unknown"
}

// Event is one completed span. Start and Dur are offsets on the trace's
// monotonic clock. The tag fields are optional and span-type specific;
// instrumented code sets them between Begin and End.
type Event struct {
	Op    string // operator name, e.g. "grb.VxM" or "lagraph.pr.round"
	Cat   Cat
	Shard int // ring shard that recorded the event (Chrome tid)
	Round int // round number for CatRound spans; 0 marks an init phase

	Start time.Duration
	Dur   time.Duration

	NNZIn   int64 // input nonzeros (frontier size, vector nvals)
	NNZOut  int64 // output nonzeros produced
	Bytes   int64 // bytes materialized: output buffers, densified copies
	Items   int64 // work items executed (galois regions and loops)
	Steals  int64 // chunks claimed beyond a worker's static share
	Workers int64 // workers the parallel region or kernel ran with

	// perfmodel deltas, captured when a collector is active during the span.
	Instr  uint64
	Loads  uint64
	Stores uint64
}

// Span is an open event. Instrumented code sets tag fields directly
// (sp.NNZIn = ...) and calls End, typically via defer on an addressable
// local so late tag writes are observed.
type Span struct {
	Event
	tr                      *Trace
	pm                      *perfmodel.Collector
	instr0, loads0, stores0 uint64
}

type key struct {
	cat Cat
	op  string
}

type shard struct {
	mu       sync.Mutex
	ring     []Event
	next     int
	recorded int64
	dropped  int64
	rounds   int64 // CatRound events with Round >= 1
	agg      map[key]*OpStat
}

// Trace is a concurrency-safe span recorder. Events are spread across
// GOMAXPROCS ring shards by an atomic cursor; each shard also keeps a
// per-(category, op) aggregate that never drops data.
type Trace struct {
	epoch  time.Time
	shards []shard
	cursor atomic.Uint32
}

// DefaultShardCapacity is the per-shard ring size used by New: large
// enough to hold every event of a bench-scale single run, small enough
// that an always-on trace stays a few MiB.
const DefaultShardCapacity = 1 << 13

// New returns a Trace with the default per-shard ring capacity.
func New() *Trace { return NewWithCapacity(DefaultShardCapacity) }

// NewWithCapacity returns a Trace whose shards each hold up to perShard
// events; older events are overwritten (and counted as dropped) once a
// shard wraps, while aggregates keep accumulating.
func NewWithCapacity(perShard int) *Trace {
	if perShard < 1 {
		perShard = 1
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	t := &Trace{epoch: time.Now(), shards: make([]shard, n)}
	for i := range t.shards {
		t.shards[i].ring = make([]Event, 0, perShard)
		t.shards[i].agg = make(map[key]*OpStat)
	}
	return t
}

var current atomic.Pointer[Trace]

// Install makes t the active trace (nil uninstalls). Like perfmodel,
// installation is global; callers own serialization of profiled runs.
func Install(t *Trace) { current.Store(t) }

// Get returns the active trace, or nil when tracing is off.
func Get() *Trace { return current.Load() }

// Begin opens a span on the installed trace. When tracing is off it
// returns an inert span; the atomic load is the only cost instrumented
// code pays on ordinary runs.
func Begin(cat Cat, op string) Span {
	t := current.Load()
	if t == nil {
		return Span{}
	}
	return t.Begin(cat, op)
}

// Begin opens a span on t directly (for code holding a trace reference).
func (t *Trace) Begin(cat Cat, op string) Span {
	sp := Span{tr: t}
	sp.Op = op
	sp.Cat = cat
	if c := perfmodel.Get(); c != nil {
		sp.pm = c
		sp.instr0, sp.loads0, sp.stores0 = c.Totals()
	}
	sp.Start = time.Since(t.epoch)
	return sp
}

// Enabled reports whether s will record on End. Instrumented code uses it
// to skip tag computation (e.g. counting output nonzeros) when idle.
func (s *Span) Enabled() bool { return s.tr != nil }

// End closes the span and records it. No-op on an inert span; safe to
// call at most once.
func (s *Span) End() {
	t := s.tr
	if t == nil {
		return
	}
	s.tr = nil
	s.Dur = time.Since(t.epoch) - s.Start
	if s.pm != nil {
		i, l, st := s.pm.Totals()
		s.Instr = i - s.instr0
		s.Loads = l - s.loads0
		s.Stores = st - s.stores0
	}
	t.record(&s.Event)
}

func (t *Trace) record(ev *Event) {
	idx := int(t.cursor.Add(1) % uint32(len(t.shards)))
	sh := &t.shards[idx]
	ev.Shard = idx
	sh.mu.Lock()
	st := sh.agg[key{ev.Cat, ev.Op}]
	if st == nil {
		st = &OpStat{Cat: ev.Cat, Op: ev.Op}
		sh.agg[key{ev.Cat, ev.Op}] = st
	}
	st.Count++
	st.Total += ev.Dur
	if ev.Dur > st.Max {
		st.Max = ev.Dur
	}
	st.NNZIn += ev.NNZIn
	st.NNZOut += ev.NNZOut
	st.Bytes += ev.Bytes
	st.Items += ev.Items
	st.Steals += ev.Steals
	if ev.Workers > st.Workers {
		st.Workers = ev.Workers
	}
	st.Instr += ev.Instr
	st.Loads += ev.Loads
	st.Stores += ev.Stores
	if ev.Cat == CatRound && ev.Round >= 1 {
		sh.rounds++
	}
	if len(sh.ring) < cap(sh.ring) {
		sh.ring = append(sh.ring, *ev)
	} else {
		sh.ring[sh.next] = *ev
		sh.dropped++
	}
	sh.next++
	if sh.next == cap(sh.ring) {
		sh.next = 0
	}
	sh.recorded++
	sh.mu.Unlock()
}

// Events returns a snapshot of the retained events across all shards,
// ordered by start time. Events evicted by ring wrap-around are absent
// (but still counted in the Summary aggregates).
func (t *Trace) Events() []Event {
	var out []Event
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.ring...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}
