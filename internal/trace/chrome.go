package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format ("X" complete
// events), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds since trace epoch
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Meta            map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the retained events as Chrome trace_event
// JSON. Rounds, regions, and kernels land on separate tid lanes offset
// by category so nested spans stay readable; tag fields become args.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(evs)),
		DisplayTimeUnit: "ms",
	}
	var dropped int64
	for i := range t.shards {
		t.shards[i].mu.Lock()
		dropped += t.shards[i].dropped
		t.shards[i].mu.Unlock()
	}
	if dropped > 0 {
		out.Meta = map[string]any{"droppedEvents": dropped}
	}
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Op,
			Cat:  ev.Cat.String(),
			Ph:   "X",
			TS:   float64(ev.Start.Nanoseconds()) / 1e3,
			Dur:  float64(ev.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			// One lane per (category, shard): rounds on low tids so the
			// per-round breakdown reads top-to-bottom in the viewer.
			TID: int(ev.Cat)*len(t.shards) + ev.Shard,
		}
		args := map[string]any{}
		if ev.Cat == CatRound {
			args["round"] = ev.Round
		}
		if ev.NNZIn != 0 {
			args["nnz_in"] = ev.NNZIn
		}
		if ev.NNZOut != 0 {
			args["nnz_out"] = ev.NNZOut
		}
		if ev.Bytes != 0 {
			args["bytes"] = ev.Bytes
		}
		if ev.Items != 0 {
			args["items"] = ev.Items
		}
		if ev.Steals != 0 {
			args["steals"] = ev.Steals
		}
		if ev.Workers != 0 {
			args["workers"] = ev.Workers
		}
		if ev.Instr != 0 {
			args["instr"] = ev.Instr
		}
		if ev.Loads != 0 {
			args["loads"] = ev.Loads
		}
		if ev.Stores != 0 {
			args["stores"] = ev.Stores
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
