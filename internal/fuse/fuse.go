// Package fuse is the expression-DAG fusion compiler over grb: the
// restructuring-compiler experiment the study's conclusion calls for.
// Instead of executing each GraphBLAS call eagerly, an algorithm records
// its round body as a small DAG of nodes (products, element-wise ops,
// apply, select, assign, gather, reduce — with mask and accumulator
// edges), a planner pattern-matches chains the bulk matrix API normally
// forces to materialize intermediates for, and an executor lowers matched
// windows onto the fused composite kernels in grb (fusedchains.go),
// falling back to the ordinary eager calls for everything else.
//
// The contract is bit-identity: running a program fused produces exactly
// the bytes eager execution would, on every executor and worker count
// (internal/verify's fused differential suite enforces this across the
// seeded corpus). Fusion changes which intermediates exist, never what
// the program computes. Elided materializations are reported through
// fused-category trace spans so the recovered fraction of the paper's
// matrix-API gap is directly measurable.
package fuse

import (
	"graphstudy/internal/grb"
)

// Kind classifies a DAG node by the grb operation it records.
type Kind uint8

const (
	KAssign Kind = iota
	KVxM
	KMxV
	KMxM
	KEWiseAdd
	KEWiseMult
	KApply
	KSelect
	KGather
	KReduce
)

// String returns the lowercase operation name used in plan listings.
func (k Kind) String() string {
	switch k {
	case KAssign:
		return "assign"
	case KVxM:
		return "vxm"
	case KMxV:
		return "mxv"
	case KMxM:
		return "mxm"
	case KEWiseAdd:
		return "ewiseadd"
	case KEWiseMult:
		return "ewisemult"
	case KApply:
		return "apply"
	case KSelect:
		return "select"
	case KGather:
		return "gather"
	case KReduce:
		return "reduce"
	}
	return "unknown"
}

// MaskKind classifies a node's mask edge.
type MaskKind uint8

const (
	// MaskNone means the node writes unmasked.
	MaskNone MaskKind = iota
	// MaskStruct admits positions with any explicit entry in the source.
	MaskStruct
	// MaskValue admits positions whose explicit value is non-zero.
	MaskValue
)

// MaskSpec is a lazy mask edge: it names the mask's source vector and
// shape without building the bitmap. Masks must be materialized at node
// execution time — the source typically mutates earlier in the same
// program — and fused kernels never materialize them at all (that is much
// of what they elide).
type MaskSpec struct {
	kind MaskKind
	comp bool
	src  any
	mk   func() *grb.Mask
}

// NoMask is the absent mask edge.
func NoMask() MaskSpec { return MaskSpec{} }

// StructOf records a structural mask over v's explicit entries.
func StructOf[T comparable](v *grb.Vector[T]) MaskSpec {
	return MaskSpec{kind: MaskStruct, src: v, mk: func() *grb.Mask { return grb.StructMask(v) }}
}

// ValueOf records a value mask over v's non-zero explicit entries.
func ValueOf[T comparable](v *grb.Vector[T]) MaskSpec {
	return MaskSpec{kind: MaskValue, src: v, mk: func() *grb.Mask { return grb.ValueMask(v) }}
}

// Comp returns the complemented mask edge.
func (m MaskSpec) Comp() MaskSpec {
	m.comp = !m.comp
	return m
}

// materialize builds the grb mask from the source's current contents.
func (m MaskSpec) materialize() *grb.Mask {
	if m.kind == MaskNone {
		return nil
	}
	mask := m.mk()
	if m.comp {
		mask = mask.Comp()
	}
	return mask
}

// node is one recorded operation. The metadata fields (kind, out, ins,
// mask, accum, replace, semiring) drive pattern matching and plan
// listings; run executes the operation eagerly; payload carries the typed
// operands into the generic-free planner via the fuser interfaces in
// plan.go.
type node struct {
	id       int
	kind     Kind
	out      any
	ins      []any
	mask     MaskSpec
	accum    bool
	replace  bool
	semiring string
	run      func(*grb.Context) error
	payload  any
}

// Program is a recorded expression DAG plus the context it will run on.
// Nodes execute in recording order; the planner only ever replaces
// contiguous windows with equivalent fused steps.
type Program struct {
	ctx   *grb.Context
	nodes []*node
	// temps lists vectors the caller declared program-local (see Temp).
	// A slice probed linearly, never a map: plan construction must be
	// deterministic and lintably iteration-order-free.
	temps []any
}

// NewProgram returns an empty program that will execute on ctx.
func NewProgram(ctx *grb.Context) *Program { return &Program{ctx: ctx} }

// Temp declares vectors as program-local temporaries: dead after the
// program unless a later node reads them. Patterns that elide an
// intermediate entirely (the SpMV target of an accumulate, the improved
// flags of a relaxation) only fire on declared temps — eliding a vector
// the caller still holds would be observable.
func (p *Program) Temp(vs ...any) {
	p.temps = append(p.temps, vs...)
}

func (p *Program) isTemp(v any) bool {
	for _, t := range p.temps {
		if t == v {
			return true
		}
	}
	return false
}

func (p *Program) add(n *node) {
	n.id = len(p.nodes)
	p.nodes = append(p.nodes, n)
}

// Len returns the number of recorded nodes.
func (p *Program) Len() int { return len(p.nodes) }

// AssignConstant records w<mask> = value (grb.AssignConstant).
func AssignConstant[T comparable](p *Program, w *grb.Vector[T], mask MaskSpec, accum grb.BinaryOp[T], value T, desc grb.Desc) {
	p.add(&node{
		kind: KAssign, out: w, mask: mask, accum: accum != nil, replace: desc.Replace,
		payload: assignPayload[T]{w: w, value: value},
		run: func(ctx *grb.Context) error {
			return grb.AssignConstant(ctx, w, mask.materialize(), accum, value, desc)
		},
	})
}

// VxM records w<mask> = u ⊗ A (grb.VxM).
func VxM[T comparable](p *Program, w *grb.Vector[T], mask MaskSpec, accum grb.BinaryOp[T], s grb.Semiring[T], u *grb.Vector[T], A *grb.Matrix[T], desc grb.Desc) {
	p.add(&node{
		kind: KVxM, out: w, ins: []any{u, A}, mask: mask, accum: accum != nil,
		replace: desc.Replace, semiring: s.Name,
		payload: vxmPayload[T]{w: w, u: u, A: A, s: s, desc: desc},
		run: func(ctx *grb.Context) error {
			return grb.VxM(ctx, w, mask.materialize(), accum, s, u, A, desc)
		},
	})
}

// MxV records w<mask> = A ⊗ u (grb.MxV). No pattern currently matches it;
// it always executes eagerly.
func MxV[T comparable](p *Program, w *grb.Vector[T], mask MaskSpec, accum grb.BinaryOp[T], s grb.Semiring[T], A *grb.Matrix[T], u *grb.Vector[T], desc grb.Desc) {
	p.add(&node{
		kind: KMxV, out: w, ins: []any{A, u}, mask: mask, accum: accum != nil,
		replace: desc.Replace, semiring: s.Name,
		run: func(ctx *grb.Context) error {
			return grb.MxV(ctx, w, mask.materialize(), accum, s, A, u, desc)
		},
	})
}

// EWiseAdd records w<mask> = u ∪ v under op (grb.EWiseAdd).
func EWiseAdd[T comparable](p *Program, w *grb.Vector[T], mask MaskSpec, accum grb.BinaryOp[T], op grb.BinaryOp[T], u, v *grb.Vector[T], desc grb.Desc) {
	p.add(&node{
		kind: KEWiseAdd, out: w, ins: []any{u, v}, mask: mask, accum: accum != nil,
		replace: desc.Replace,
		payload: ewisePayload[T]{w: w, u: u, v: v, op: op},
		run: func(ctx *grb.Context) error {
			return grb.EWiseAdd(ctx, w, mask.materialize(), accum, op, u, v, desc)
		},
	})
}

// EWiseMult records w<mask> = u ∩ v under op (grb.EWiseMult).
func EWiseMult[T comparable](p *Program, w *grb.Vector[T], mask MaskSpec, accum grb.BinaryOp[T], op grb.BinaryOp[T], u, v *grb.Vector[T], desc grb.Desc) {
	p.add(&node{
		kind: KEWiseMult, out: w, ins: []any{u, v}, mask: mask, accum: accum != nil,
		replace: desc.Replace,
		payload: ewisePayload[T]{w: w, u: u, v: v, op: op},
		run: func(ctx *grb.Context) error {
			return grb.EWiseMult(ctx, w, mask.materialize(), accum, op, u, v, desc)
		},
	})
}

// Apply records w<mask> = op(u) (grb.Apply).
func Apply[T comparable](p *Program, w *grb.Vector[T], mask MaskSpec, accum grb.BinaryOp[T], op grb.UnaryOp[T], u *grb.Vector[T], desc grb.Desc) {
	p.add(&node{
		kind: KApply, out: w, ins: []any{u}, mask: mask, accum: accum != nil,
		replace: desc.Replace,
		payload: applyPayload[T]{w: w, u: u, op: op},
		run: func(ctx *grb.Context) error {
			return grb.Apply(ctx, w, mask.materialize(), accum, op, u, desc)
		},
	})
}

// Select records w<mask> = entries of u where pred holds
// (grb.SelectVector).
func Select[T comparable](p *Program, w *grb.Vector[T], mask MaskSpec, pred grb.IndexedPredicate[T], u *grb.Vector[T], desc grb.Desc) {
	p.add(&node{
		kind: KSelect, out: w, ins: []any{u}, mask: mask, replace: desc.Replace,
		payload: selectPayload[T]{w: w, u: u, pred: pred},
		run: func(ctx *grb.Context) error {
			return grb.SelectVector(ctx, w, mask.materialize(), pred, u, desc)
		},
	})
}

// Gather records w = u[indices] (grb.Gather), the extract-style node.
func Gather[T comparable](p *Program, w *grb.Vector[T], u *grb.Vector[T], indices *grb.Vector[uint32], desc grb.Desc) {
	p.add(&node{
		kind: KGather, out: w, ins: []any{u, indices}, replace: desc.Replace,
		run: func(ctx *grb.Context) error {
			return grb.Gather(ctx, w, u, indices, desc)
		},
	})
}

// Scalar is the lazy result handle of a Reduce node; Value is meaningful
// after the program ran.
type Scalar[T any] struct {
	val T
	ok  bool
}

// Value returns the reduced value and whether the node has executed.
func (s *Scalar[T]) Value() (T, bool) { return s.val, s.ok }

// Reduce records a fold of u's explicit entries under the monoid
// (grb.ReduceVector), returning a handle resolved at execution.
func Reduce[T comparable](p *Program, m grb.Monoid[T], u *grb.Vector[T]) *Scalar[T] {
	out := &Scalar[T]{}
	p.add(&node{
		kind: KReduce, out: out, ins: []any{u},
		run: func(ctx *grb.Context) error {
			out.val = grb.ReduceVector(ctx, m, u)
			out.ok = true
			return nil
		},
	})
	return out
}

// MatRef is the lazy result handle of an MxM node.
type MatRef[T any] struct {
	M *grb.Matrix[T]
}

// MxM records C = A ⊗ B (grb.MxM), returning a handle resolved at
// execution. Always eager; recorded so matrix-producing chains can live
// in one program.
func MxM[T comparable](p *Program, s grb.Semiring[T], a, b *grb.Matrix[T]) *MatRef[T] {
	ref := &MatRef[T]{}
	p.add(&node{
		kind: KMxM, out: ref, ins: []any{a, b}, semiring: s.Name,
		run: func(ctx *grb.Context) error {
			m, err := grb.MxM(ctx, nil, s, a, b)
			ref.M = m
			return err
		},
	})
	return ref
}

// payloads: the typed operand bundles pattern lowering needs. Each
// implements one or more fuser interfaces (plan.go) so the planner can
// stay free of type parameters.

type assignPayload[T comparable] struct {
	w     *grb.Vector[T]
	value T
}

type vxmPayload[T comparable] struct {
	w, u *grb.Vector[T]
	A    *grb.Matrix[T]
	s    grb.Semiring[T]
	desc grb.Desc
}

type applyPayload[T comparable] struct {
	w, u *grb.Vector[T]
	op   grb.UnaryOp[T]
}

type ewisePayload[T comparable] struct {
	w, u, v *grb.Vector[T]
	op      grb.BinaryOp[T]
}

type selectPayload[T comparable] struct {
	w, u *grb.Vector[T]
	pred grb.IndexedPredicate[T]
}

func (ap assignPayload[T]) fuseExpand(vxmAny any) fusedRun {
	vp, ok := vxmAny.(vxmPayload[bool])
	if !ok {
		return nil
	}
	dist, level := ap.w, ap.value
	return func(ctx *grb.Context) (grb.FusedStats, bool, error) {
		return grb.FusedAssignExpand(ctx, dist, level, vp.w, vp.A)
	}
}

func (vp vxmPayload[T]) fuseVxMApply(applyAny any) fusedRun {
	app, ok := applyAny.(applyPayload[T])
	if !ok {
		return nil
	}
	return func(ctx *grb.Context) (grb.FusedStats, bool, error) {
		return grb.FusedVxMApply(ctx, vp.w, vp.s, vp.u, vp.A, app.op, vp.desc)
	}
}

func (addP ewisePayload[T]) fuseFoldScale(multAny any) fusedRun {
	mp, ok := multAny.(ewisePayload[T])
	if !ok {
		return nil
	}
	// w1 = addOp(w1, x); w2 = mulOp(x, y), x shared (checked structurally
	// by the planner: addP.v == mp.u).
	return func(ctx *grb.Context) (grb.FusedStats, bool, error) {
		return grb.FusedFoldScale(ctx, addP.w, addP.op, mp.u, mp.v, mp.w, mp.op)
	}
}

func (vp vxmPayload[T]) fuseRelax(multAny, addAny, selAny any) fusedRun {
	mp, ok1 := multAny.(ewisePayload[T])
	ap, ok2 := addAny.(ewisePayload[T])
	sp, ok3 := selAny.(selectPayload[T])
	if !ok1 || !ok2 || !ok3 {
		return nil
	}
	return func(ctx *grb.Context) (grb.FusedStats, bool, error) {
		return grb.FusedRelax(ctx, sp.w, ap.w, vp.s, vp.u, vp.A, mp.op, ap.op, sp.pred, vp.desc)
	}
}

func (vp vxmPayload[T]) fuseAccum(addAny any) fusedRun {
	ap, ok := addAny.(ewisePayload[T])
	if !ok {
		return nil
	}
	return func(ctx *grb.Context) (grb.FusedStats, bool, error) {
		return grb.FusedVxMAccum(ctx, ap.w, ap.op, vp.s, vp.u, vp.A, vp.desc)
	}
}
