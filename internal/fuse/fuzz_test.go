// FuzzDagEquivalence builds random well-typed programs over a small pool
// of float64 vectors and checks the fusion compiler's whole contract at
// once: the plan is deterministic, it covers every node exactly once, and
// running it produces bit-identical pool contents to the eager schedule —
// whichever windows the planner happened to fuse or bail on.
package fuse_test

import (
	"math"
	"math/rand"
	"testing"

	"graphstudy/internal/fuse"
	"graphstudy/internal/grb"
)

// fuzzOps interprets the byte stream as a program over the pool. Every
// stream is well-typed by construction; indices wrap around the pool.
func fuzzOps(p *fuse.Program, pool []*grb.Vector[float64], A *grb.Matrix[float64], data []byte) {
	plus := func(a, b float64) float64 { return a + b }
	times := func(a, b float64) float64 { return a * b }
	minF := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	lt := func(a, b float64) float64 {
		if a < b {
			return 1
		}
		return 0
	}
	vec := func(b byte) *grb.Vector[float64] { return pool[int(b)%len(pool)] }
	const opBytes = 4
	for len(data) >= opBytes {
		op, b1, b2, b3 := data[0], data[1], data[2], data[3]
		data = data[opBytes:]
		w, u, v := vec(b1), vec(b2), vec(b3)
		replace := grb.Desc{Replace: b3&1 == 1}
		switch op % 8 {
		case 0:
			mask := fuse.NoMask()
			if b2&1 == 1 {
				mask = fuse.StructOf(u)
			}
			fuse.AssignConstant(p, w, mask, nil, float64(b3%16)/4, grb.Desc{})
		case 1:
			s := grb.PlusTimes[float64]()
			if b2&2 == 2 {
				s = grb.MinPlus[float64]()
			}
			fuse.VxM(p, w, fuse.NoMask(), nil, s, u, A, grb.Desc{Replace: true})
		case 2:
			var accum grb.BinaryOp[float64]
			if b3&2 == 2 {
				accum = plus
			}
			op := plus
			if b3&4 == 4 {
				op = minF
			}
			fuse.EWiseAdd(p, w, fuse.NoMask(), accum, op, u, v, replace)
		case 3:
			op := times
			if b3&2 == 2 {
				op = lt
			}
			fuse.EWiseMult(p, w, fuse.NoMask(), nil, op, u, v, grb.Desc{Replace: true})
		case 4:
			fuse.Apply(p, w, fuse.NoMask(), nil, func(x float64) float64 { return 0.5 * x }, u, replace)
		case 5:
			mask := fuse.NoMask()
			if b3&2 == 2 {
				mask = fuse.ValueOf(v)
			}
			thresh := float64(b3%32) / 2
			fuse.Select(p, w, mask, func(x float64, _, _ int) bool { return x < thresh }, u, grb.Desc{Replace: true})
		case 6:
			fuse.Reduce(p, grb.PlusMonoid[float64](), u)
		case 7:
			s := grb.PlusTimes[float64]()
			fuse.MxV(p, w, fuse.NoMask(), nil, s, A, u, replace)
		}
	}
}

// fuzzPool builds the deterministic vector pool: one fully dense, one
// partially dense, one sorted, one list.
func fuzzPool(n int, seed int64) []*grb.Vector[float64] {
	r := rand.New(rand.NewSource(seed))
	full := grb.NewVector[float64](n, grb.Dense)
	full.DenseFill(0)
	for i := 0; i < n; i++ {
		full.SetElement(i, float64(1+r.Intn(32))/4)
	}
	part := grb.NewVector[float64](n, grb.Dense)
	sorted := grb.NewVector[float64](n, grb.Sorted)
	list := grb.NewVector[float64](n, grb.List)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			part.SetElement(i, float64(1+r.Intn(32))/4)
		}
		if r.Intn(3) == 0 {
			sorted.SetElement(i, float64(1+r.Intn(32))/4)
		}
		if r.Intn(3) == 0 {
			list.SetElement(i, float64(1+r.Intn(32))/4)
		}
	}
	return []*grb.Vector[float64]{full, part, sorted, list}
}

func FuzzDagEquivalence(f *testing.F) {
	// Seeds covering each fused pattern (given temps = pool[2], pool[3]):
	// fold-scale (ewiseadd + ewisemult sharing x), spmv-apply (vxm + apply
	// in place), spmv-accum (vxm into the sorted temp + fold), relax (the
	// full four-node chain), plus an eager-only soup.
	f.Add(byte(3), []byte{2, 0, 1, 0, 3, 2, 1, 1})
	f.Add(byte(3), []byte{1, 0, 0, 0, 4, 0, 0, 1})
	f.Add(byte(3), []byte{1, 2, 1, 0, 2, 0, 0, 2})
	f.Add(byte(3), []byte{1, 2, 1, 2, 3, 3, 2, 0, 2, 0, 0, 6, 5, 1, 2, 3})
	f.Add(byte(0), []byte{0, 0, 1, 5, 7, 1, 2, 0, 6, 2, 0, 0, 5, 0, 1, 2})
	f.Fuzz(func(t *testing.T, tempMask byte, data []byte) {
		if len(data) > 64 {
			data = data[:64] // bound program length
		}
		const n = 24
		r := rand.New(rand.NewSource(99))
		A := f64Matrix(t, n, randEdges(n, 3*n, r), func(k int) float64 { return float64(1+k%7) / 2 })
		A.EnsureCSC()
		ctx := grb.NewGaloisBLASContext(3)

		poolE := fuzzPool(n, 1)
		poolF := fuzzPool(n, 1)
		declareTemps := func(p *fuse.Program, pool []*grb.Vector[float64]) {
			for i := range pool {
				if tempMask&(1<<uint(i)) != 0 {
					p.Temp(pool[i])
				}
			}
		}
		pe := fuse.NewProgram(ctx)
		declareTemps(pe, poolE)
		fuzzOps(pe, poolE, A, data)
		pf := fuse.NewProgram(ctx)
		declareTemps(pf, poolF)
		fuzzOps(pf, poolF, A, data)

		// The two programs are structurally identical, so their plans must
		// render identically — and cover every node exactly once.
		plE, plF := pe.Plan(), pf.Plan()
		if plE.String() != plF.String() {
			t.Fatalf("plan nondeterminism:\n%s\nvs\n%s", plE, plF)
		}
		covered := 0
		for i := range plF.Steps {
			covered += len(plF.Steps[i].Nodes())
		}
		if covered != pf.Len() {
			t.Fatalf("plan covers %d of %d nodes:\n%s", covered, pf.Len(), plF)
		}

		if err := pe.RunEager(); err != nil {
			t.Fatal(err)
		}
		if err := plF.Run(); err != nil {
			t.Fatal(err)
		}
		for i := range poolE {
			if tempMask&(1<<uint(i)) != 0 {
				// Declared temporaries are exactly the vectors fusion is
				// licensed to leave unmaterialized; their contents are
				// unobservable by contract.
				continue
			}
			wi, wv := poolE[i].Entries()
			gi, gv := poolF[i].Entries()
			if len(wi) != len(gi) {
				t.Fatalf("pool[%d]: %d entries, want %d\nplan:\n%s", i, len(gi), len(wi), plF)
			}
			for k := range wi {
				if wi[k] != gi[k] || math.Float64bits(wv[k]) != math.Float64bits(gv[k]) {
					t.Fatalf("pool[%d] entry %d: (%d,%x) want (%d,%x)\nplan:\n%s",
						i, k, gi[k], math.Float64bits(gv[k]), wi[k], math.Float64bits(wv[k]), plF)
				}
			}
		}
	})
}
