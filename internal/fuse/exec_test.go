// Execution equivalence tests: for every fused pattern, Run (planned,
// fused) must produce bit-identical vectors to RunEager (recording order,
// no fusion) on every runtime and worker count — including the runtime
// bail path, where a precondition fails at execution time and the window
// falls back to the eager nodes.
package fuse_test

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"graphstudy/internal/fuse"
	"graphstudy/internal/grb"
	"graphstudy/internal/trace"
)

// workersFlag mirrors the flag the grb equivalence tests register: CI's
// test-parallel job passes -grb.workers=4.
var workersFlag = flag.Int("grb.workers", 0, "worker count for fuse equivalence tests (0 = sweep 1,2,4,7)")

func workerCounts() []int {
	if *workersFlag > 0 {
		return []int{1, *workersFlag}
	}
	return []int{1, 2, 4, 7}
}

type namedCtx struct {
	name string
	ctx  *grb.Context
}

func contexts() []namedCtx {
	var out []namedCtx
	for _, w := range workerCounts() {
		out = append(out,
			namedCtx{fmt.Sprintf("static-%d", w), grb.NewSuiteSparseContext(w)},
			namedCtx{fmt.Sprintf("steal-%d", w), grb.NewGaloisBLASContext(w)},
		)
	}
	return out
}

func mustEqualF64(t *testing.T, label string, want, got *grb.Vector[float64]) {
	t.Helper()
	wi, wv := want.Entries()
	gi, gv := got.Entries()
	if len(wi) != len(gi) {
		t.Fatalf("%s: %d entries, want %d", label, len(gi), len(wi))
	}
	for k := range wi {
		if wi[k] != gi[k] {
			t.Fatalf("%s: entry %d at index %d, want index %d", label, k, gi[k], wi[k])
		}
		if math.Float64bits(gv[k]) != math.Float64bits(wv[k]) {
			t.Fatalf("%s: value at %d = %v (bits %x), want %v (bits %x)",
				label, wi[k], gv[k], math.Float64bits(gv[k]), wv[k], math.Float64bits(wv[k]))
		}
	}
	if want.Rep() != got.Rep() {
		t.Fatalf("%s: representation %v, want %v", label, got.Rep(), want.Rep())
	}
}

// denseF64 builds a fully dense vector with deterministic pseudo-random
// values.
func denseF64(n int, r *rand.Rand) *grb.Vector[float64] {
	v := grb.NewVector[float64](n, grb.Dense)
	v.DenseFill(0)
	for i := 0; i < n; i++ {
		v.SetElement(i, float64(1+r.Intn(64))/8)
	}
	return v
}

// sparseF64 builds a Sorted vector with about half the positions explicit.
func sparseF64(n int, r *rand.Rand) *grb.Vector[float64] {
	v := grb.NewVector[float64](n, grb.Sorted)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			v.SetElement(i, float64(1+r.Intn(64))/8)
		}
	}
	return v
}

// prRound records the residual pagerank iteration over the given pool.
func prRound(p *fuse.Program, pr, res, contrib, invdeg *grb.Vector[float64], A *grb.Matrix[float64]) {
	plus := func(a, b float64) float64 { return a + b }
	times := func(a, b float64) float64 { return a * b }
	fuse.EWiseAdd(p, pr, fuse.NoMask(), nil, plus, pr, res, grb.Desc{})
	fuse.EWiseMult(p, contrib, fuse.NoMask(), nil, times, res, invdeg, grb.Desc{Replace: true})
	fuse.VxM(p, res, fuse.NoMask(), nil, grb.PlusTimes[float64](), contrib, A, grb.Desc{Replace: true})
	fuse.Apply(p, res, fuse.NoMask(), nil, func(x float64) float64 { return 0.85 * x }, res, grb.Desc{Replace: true})
}

// TestPRRoundEquivalence: the fold-scale + spmv-apply plan against the
// eager schedule, with both a fully dense and a partially dense residual
// (the shape pagerank reaches after its first iteration).
func TestPRRoundEquivalence(t *testing.T) {
	const n = 64
	for _, nc := range contexts() {
		for _, partial := range []bool{false, true} {
			r := rand.New(rand.NewSource(42))
			A := f64Matrix(t, n, randEdges(n, 4*n, r), func(k int) float64 { return 1 })
			A.EnsureCSC()
			pr := denseF64(n, r)
			res := denseF64(n, r)
			if partial {
				// Knock out a band of entries, including a bitmap-word
				// straddling range, to exercise the pattern-aware path.
				for i := 10; i < 30; i++ {
					res.RemoveElement(i)
				}
			}
			contrib := grb.NewVector[float64](n, grb.Dense)
			invdeg := denseF64(n, r)

			prE, resE, contribE, invdegE := pr.Dup(), res.Dup(), contrib.Dup(), invdeg.Dup()
			pe := fuse.NewProgram(nc.ctx)
			prRound(pe, prE, resE, contribE, invdegE, A)
			if err := pe.RunEager(); err != nil {
				t.Fatal(err)
			}
			pf := fuse.NewProgram(nc.ctx)
			prRound(pf, pr, res, contrib, invdeg, A)
			if err := pf.Run(); err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("%s partial=%v", nc.name, partial)
			mustEqualF64(t, label+" pr", prE, pr)
			mustEqualF64(t, label+" res", resE, res)
			mustEqualF64(t, label+" contrib", contribE, contrib)
		}
	}
}

// relaxRound records the light-edge relaxation chain, returning the next
// frontier.
func relaxRound(p *fuse.Program, t, cur *grb.Vector[float64], A *grb.Matrix[float64], upper float64) *grb.Vector[float64] {
	n := t.Size()
	minF := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	lt := func(a, b float64) float64 {
		if a < b {
			return 1
		}
		return 0
	}
	tReq := grb.NewVector[float64](n, grb.Sorted)
	improved := grb.NewVector[float64](n, grb.Sorted)
	next := grb.NewVector[float64](n, grb.Sorted)
	p.Temp(tReq, improved)
	fuse.VxM(p, tReq, fuse.NoMask(), nil, grb.MinPlus[float64](), cur, A, grb.Desc{Replace: true})
	fuse.EWiseMult(p, improved, fuse.NoMask(), nil, lt, tReq, t, grb.Desc{Replace: true})
	fuse.EWiseAdd(p, t, fuse.NoMask(), nil, minF, t, tReq, grb.Desc{})
	fuse.Select(p, next, fuse.ValueOf(improved), func(v float64, _, _ int) bool { return v < upper }, tReq, grb.Desc{Replace: true})
	return next
}

// TestRelaxEquivalence: the four-node relaxation window against its eager
// schedule; t (in place) and the emitted frontier must match bit for bit.
func TestRelaxEquivalence(t *testing.T) {
	const n = 64
	for _, nc := range contexts() {
		r := rand.New(rand.NewSource(7))
		A := f64Matrix(t, n, randEdges(n, 5*n, r), func(k int) float64 { return float64(1+k%9) / 2 })
		dist := denseF64(n, r)
		cur := sparseF64(n, r)

		distE, curE := dist.Dup(), cur.Dup()
		pe := fuse.NewProgram(nc.ctx)
		nextE := relaxRound(pe, distE, curE, A, 12)
		if err := pe.RunEager(); err != nil {
			t.Fatal(err)
		}
		pf := fuse.NewProgram(nc.ctx)
		next := relaxRound(pf, dist, cur, A, 12)
		if err := pf.Run(); err != nil {
			t.Fatal(err)
		}
		mustEqualF64(t, nc.name+" t", distE, dist)
		mustEqualF64(t, nc.name+" next", nextE, next)
	}
}

// TestAccumEquivalence: the spmv-accum window (heavy-edge fold) against its
// eager schedule.
func TestAccumEquivalence(t *testing.T) {
	const n = 48
	minF := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	for _, nc := range contexts() {
		r := rand.New(rand.NewSource(11))
		A := f64Matrix(t, n, randEdges(n, 6*n, r), func(k int) float64 { return float64(1 + k%13) })
		dist := denseF64(n, r)
		src := sparseF64(n, r)

		distE := dist.Dup()
		build := func(p *fuse.Program, d *grb.Vector[float64]) {
			tReq := grb.NewVector[float64](n, grb.Sorted)
			p.Temp(tReq)
			fuse.VxM(p, tReq, fuse.NoMask(), nil, grb.MinPlus[float64](), src, A, grb.Desc{Replace: true})
			fuse.EWiseAdd(p, d, fuse.NoMask(), nil, minF, d, tReq, grb.Desc{})
		}
		pe := fuse.NewProgram(nc.ctx)
		build(pe, distE)
		if err := pe.RunEager(); err != nil {
			t.Fatal(err)
		}
		pf := fuse.NewProgram(nc.ctx)
		build(pf, dist)
		if err := pf.Run(); err != nil {
			t.Fatal(err)
		}
		mustEqualF64(t, nc.name, distE, dist)
	}
}

// TestBFSExpandEquivalence: the assign+expand window against its eager
// schedule, checked on the level vector and the next frontier.
func TestBFSExpandEquivalence(t *testing.T) {
	const n = 64
	for _, nc := range contexts() {
		r := rand.New(rand.NewSource(3))
		A := boolMatrix(t, n, randEdges(n, 4*n, r))
		dist := grb.NewVector[int32](n, grb.Dense)
		dist.DenseFill(0)
		// A couple of already-visited vertices plus a three-vertex frontier.
		dist.SetElement(0, 1)
		dist.SetElement(5, 1)
		frontier := grb.NewVector[bool](n, grb.List)
		frontier.SetElement(3, true)
		frontier.SetElement(17, true)
		frontier.SetElement(40, true)

		build := func(p *fuse.Program, d *grb.Vector[int32], f *grb.Vector[bool]) {
			fuse.AssignConstant(p, d, fuse.StructOf(f), nil, int32(2), grb.Desc{})
			fuse.VxM(p, f, fuse.ValueOf(d).Comp(), nil, grb.LorLand(), f, A, grb.Desc{Replace: true})
		}
		distE, frontierE := dist.Dup(), frontier.Dup()
		pe := fuse.NewProgram(nc.ctx)
		build(pe, distE, frontierE)
		if err := pe.RunEager(); err != nil {
			t.Fatal(err)
		}
		pf := fuse.NewProgram(nc.ctx)
		build(pf, dist, frontier)
		if err := pf.Run(); err != nil {
			t.Fatal(err)
		}
		wi, _ := distE.Entries()
		gi, _ := dist.Entries()
		wv := levels(distE)
		gv := levels(dist)
		if len(wi) != len(gi) {
			t.Fatalf("%s: dist %d entries, want %d", nc.name, len(gi), len(wi))
		}
		for i := range wv {
			if wv[i] != gv[i] {
				t.Fatalf("%s: dist[%d] = %d, want %d", nc.name, i, gv[i], wv[i])
			}
		}
		fi, _ := frontierE.Entries()
		ff, _ := frontier.Entries()
		if len(fi) != len(ff) {
			t.Fatalf("%s: frontier %d entries, want %d", nc.name, len(ff), len(fi))
		}
		for k := range fi {
			if fi[k] != ff[k] {
				t.Fatalf("%s: frontier entry %d at %d, want %d", nc.name, k, ff[k], fi[k])
			}
		}
	}
}

func levels(v *grb.Vector[int32]) []int32 {
	out := make([]int32, v.Size())
	v.ForEach(func(i int, val int32) { out[i] = val })
	return out
}

// TestFusedBailFallsBackEager: a structurally fused plan whose runtime
// precondition fails (w1 not dense) must run the eager window, produce
// identical results, and tag the span with the .bail suffix.
func TestFusedBailFallsBackEager(t *testing.T) {
	const n = 32
	ctx := grb.NewGaloisBLASContext(2)
	r := rand.New(rand.NewSource(9))
	plus := func(a, b float64) float64 { return a + b }
	times := func(a, b float64) float64 { return a * b }
	w1 := sparseF64(n, r) // Sorted: FusedFoldScale requires fully dense
	x := denseF64(n, r)
	y := denseF64(n, r)
	w2 := grb.NewVector[float64](n, grb.Dense)

	build := func(p *fuse.Program, a, b, c, d *grb.Vector[float64]) {
		fuse.EWiseAdd(p, a, fuse.NoMask(), nil, plus, a, b, grb.Desc{})
		fuse.EWiseMult(p, d, fuse.NoMask(), nil, times, b, c, grb.Desc{Replace: true})
	}
	w1E, w2E := w1.Dup(), w2.Dup()
	pe := fuse.NewProgram(ctx)
	build(pe, w1E, x, y, w2E)
	if err := pe.RunEager(); err != nil {
		t.Fatal(err)
	}

	pf := fuse.NewProgram(ctx)
	build(pf, w1, x, y, w2)
	pl := pf.Plan()
	if len(pl.Steps) != 1 || !pl.Steps[0].Fused || pl.Steps[0].Name != "fold-scale" {
		t.Fatalf("plan = %s, want one fused fold-scale step", pl)
	}
	tr := trace.New()
	trace.Install(tr)
	err := pl.Run()
	trace.Install(nil)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualF64(t, "bail w1", w1E, w1)
	mustEqualF64(t, "bail w2", w2E, w2)
	sum := tr.Summary()
	if sum.Find(trace.CatFused, "fuse.fold-scale.bail") == nil {
		t.Errorf("no fuse.fold-scale.bail span recorded; fused spans: %+v", sum.Find(trace.CatFused, "fuse.fold-scale"))
	}
	if sum.BytesElided != 0 {
		t.Errorf("bailed window reported %d elided bytes, want 0", sum.BytesElided)
	}
}

// TestElidedBytesReported: a fused BFS window must report elided
// intermediate bytes through the fused-category span, routed into
// Summary.BytesElided and kept out of Summary.Bytes.
func TestElidedBytesReported(t *testing.T) {
	const n = 64
	ctx := grb.NewGaloisBLASContext(2)
	r := rand.New(rand.NewSource(5))
	A := boolMatrix(t, n, randEdges(n, 4*n, r))
	dist := grb.NewVector[int32](n, grb.Dense)
	dist.DenseFill(0)
	frontier := grb.NewVector[bool](n, grb.List)
	frontier.SetElement(1, true)

	p := fuse.NewProgram(ctx)
	fuse.AssignConstant(p, dist, fuse.StructOf(frontier), nil, int32(1), grb.Desc{})
	fuse.VxM(p, frontier, fuse.ValueOf(dist).Comp(), nil, grb.LorLand(), frontier, A, grb.Desc{Replace: true})

	tr := trace.New()
	trace.Install(tr)
	err := p.Run()
	trace.Install(nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	st := sum.Find(trace.CatFused, "fuse.bfs-expand")
	if st == nil {
		t.Fatal("no fuse.bfs-expand span recorded")
	}
	if st.Bytes <= 0 {
		t.Errorf("fused step reported %d elided bytes, want > 0", st.Bytes)
	}
	if sum.BytesElided != sum.CatBytes(trace.CatFused) {
		t.Errorf("Summary.BytesElided = %d, want the fused-category total %d",
			sum.BytesElided, sum.CatBytes(trace.CatFused))
	}
	if plan := sum.Find(trace.CatFused, "fuse.plan"); plan == nil {
		t.Error("no fuse.plan span recorded")
	}
}

// randEdges generates m deterministic random edges over n vertices.
func randEdges(n, m int, r *rand.Rand) [][2]int {
	out := make([][2]int, 0, m)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		out = append(out, [2]int{u, v})
	}
	return out
}
