// Planner golden tests: planning is purely structural, so the same program
// must always produce byte-identical plan listings. Each case snapshots
// Plan.String() against testdata/<name>.golden; regenerate with
//
//	go test ./internal/fuse -run TestPlanGolden -update
package fuse_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"graphstudy/internal/fuse"
	"graphstudy/internal/grb"
)

var update = flag.Bool("update", false, "rewrite golden files")

func boolMatrix(tb testing.TB, n int, edges [][2]int) *grb.Matrix[bool] {
	tb.Helper()
	rows := make([]int, len(edges))
	cols := make([]int, len(edges))
	vals := make([]bool, len(edges))
	for k, e := range edges {
		rows[k], cols[k], vals[k] = e[0], e[1], true
	}
	m, err := grb.BuildMatrix(n, n, rows, cols, vals, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func f64Matrix(tb testing.TB, n int, edges [][2]int, w func(k int) float64) *grb.Matrix[float64] {
	tb.Helper()
	rows := make([]int, len(edges))
	cols := make([]int, len(edges))
	vals := make([]float64, len(edges))
	for k, e := range edges {
		rows[k], cols[k], vals[k] = e[0], e[1], w(k)
	}
	m, err := grb.BuildMatrix(n, n, rows, cols, vals, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

var testEdges = [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}, {2, 1}}

// planPrograms enumerates the golden cases. Each builder records a program
// without running it — planning never looks at vector contents.
func planPrograms(tb testing.TB, ctx *grb.Context) map[string]*fuse.Program {
	tb.Helper()
	const n = 4
	plus := func(a, b float64) float64 { return a + b }
	times := func(a, b float64) float64 { return a * b }
	minF := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	lt := func(a, b float64) float64 {
		if a < b {
			return 1
		}
		return 0
	}
	out := map[string]*fuse.Program{}

	{
		// The BFS round body: masked assign + complement-masked expansion.
		A := boolMatrix(tb, n, testEdges)
		dist := grb.NewVector[int32](n, grb.Dense)
		frontier := grb.NewVector[bool](n, grb.List)
		p := fuse.NewProgram(ctx)
		fuse.AssignConstant(p, dist, fuse.StructOf(frontier), nil, int32(1), grb.Desc{})
		fuse.VxM(p, frontier, fuse.ValueOf(dist).Comp(), nil, grb.LorLand(), frontier, A, grb.Desc{Replace: true})
		out["bfs_round"] = p
	}
	{
		// The residual pagerank iteration: fold+scale pair, then the
		// product re-scaled in place.
		A := f64Matrix(tb, n, testEdges, func(int) float64 { return 1 })
		pr := grb.NewVector[float64](n, grb.Dense)
		res := grb.NewVector[float64](n, grb.Dense)
		contrib := grb.NewVector[float64](n, grb.Dense)
		invdeg := grb.NewVector[float64](n, grb.Dense)
		p := fuse.NewProgram(ctx)
		fuse.EWiseAdd(p, pr, fuse.NoMask(), nil, plus, pr, res, grb.Desc{})
		fuse.EWiseMult(p, contrib, fuse.NoMask(), nil, times, res, invdeg, grb.Desc{Replace: true})
		fuse.VxM(p, res, fuse.NoMask(), nil, grb.PlusTimes[float64](), contrib, A, grb.Desc{Replace: true})
		fuse.Apply(p, res, fuse.NoMask(), nil, func(x float64) float64 { return 0.85 * x }, res, grb.Desc{Replace: true})
		out["pr_round"] = p
	}
	{
		// The delta-stepping light relaxation: both intermediates declared
		// dead temporaries.
		A := f64Matrix(tb, n, testEdges, func(k int) float64 { return float64(k + 1) })
		t := grb.NewVector[float64](n, grb.Dense)
		cur := grb.NewVector[float64](n, grb.Sorted)
		tReq := grb.NewVector[float64](n, grb.Sorted)
		improved := grb.NewVector[float64](n, grb.Sorted)
		next := grb.NewVector[float64](n, grb.Sorted)
		p := fuse.NewProgram(ctx)
		p.Temp(tReq, improved)
		fuse.VxM(p, tReq, fuse.NoMask(), nil, grb.MinPlus[float64](), cur, A, grb.Desc{Replace: true})
		fuse.EWiseMult(p, improved, fuse.NoMask(), nil, lt, tReq, t, grb.Desc{Replace: true})
		fuse.EWiseAdd(p, t, fuse.NoMask(), nil, minF, t, tReq, grb.Desc{})
		fuse.Select(p, next, fuse.ValueOf(improved), func(v float64, _, _ int) bool { return v < 8 }, tReq, grb.Desc{Replace: true})
		out["sssp_relax"] = p
	}
	{
		// The heavy-edge phase: product folded through a dead temporary.
		A := f64Matrix(tb, n, testEdges, func(k int) float64 { return float64(k + 1) })
		t := grb.NewVector[float64](n, grb.Dense)
		tB := grb.NewVector[float64](n, grb.Sorted)
		tReq := grb.NewVector[float64](n, grb.Sorted)
		p := fuse.NewProgram(ctx)
		p.Temp(tReq)
		fuse.VxM(p, tReq, fuse.NoMask(), nil, grb.MinPlus[float64](), tB, A, grb.Desc{Replace: true})
		fuse.EWiseAdd(p, t, fuse.NoMask(), nil, minF, t, tReq, grb.Desc{})
		out["sssp_heavy"] = p
	}
	{
		// The same product+fold shape WITHOUT the temp declaration: the
		// intermediate is observable, so the window must stay eager.
		A := f64Matrix(tb, n, testEdges, func(k int) float64 { return float64(k + 1) })
		t := grb.NewVector[float64](n, grb.Dense)
		tB := grb.NewVector[float64](n, grb.Sorted)
		tReq := grb.NewVector[float64](n, grb.Sorted)
		p := fuse.NewProgram(ctx)
		fuse.VxM(p, tReq, fuse.NoMask(), nil, grb.MinPlus[float64](), tB, A, grb.Desc{Replace: true})
		fuse.EWiseAdd(p, t, fuse.NoMask(), nil, minF, t, tReq, grb.Desc{})
		out["nofuse_live_temp"] = p
	}
	{
		// A masked product feeding the fold: the vxm's mask breaks the
		// spmv-accum shape even though the temp is dead.
		A := f64Matrix(tb, n, testEdges, func(k int) float64 { return float64(k + 1) })
		t := grb.NewVector[float64](n, grb.Dense)
		tB := grb.NewVector[float64](n, grb.Sorted)
		tReq := grb.NewVector[float64](n, grb.Sorted)
		p := fuse.NewProgram(ctx)
		p.Temp(tReq)
		fuse.VxM(p, tReq, fuse.ValueOf(t), nil, grb.MinPlus[float64](), tB, A, grb.Desc{Replace: true})
		fuse.EWiseAdd(p, t, fuse.NoMask(), nil, minF, t, tReq, grb.Desc{})
		out["nofuse_masked_vxm"] = p
	}
	{
		// An accumulator on the fold: accum edges always stay eager.
		A := f64Matrix(tb, n, testEdges, func(int) float64 { return 1 })
		t := grb.NewVector[float64](n, grb.Dense)
		tB := grb.NewVector[float64](n, grb.Sorted)
		tReq := grb.NewVector[float64](n, grb.Sorted)
		p := fuse.NewProgram(ctx)
		p.Temp(tReq)
		fuse.VxM(p, tReq, fuse.NoMask(), nil, grb.PlusTimes[float64](), tB, A, grb.Desc{Replace: true})
		fuse.EWiseAdd(p, t, fuse.NoMask(), plus, plus, t, tReq, grb.Desc{})
		out["nofuse_accum"] = p
	}
	{
		// Node kinds no pattern covers (product handles, gather, reduce):
		// every step eager, result handles named r0/r1.
		A := f64Matrix(tb, n, testEdges, func(int) float64 { return 1 })
		u := grb.NewVector[float64](n, grb.Dense)
		w := grb.NewVector[float64](n, grb.Dense)
		g := grb.NewVector[float64](n, grb.Sorted)
		idx := grb.NewVector[uint32](n, grb.Dense)
		p := fuse.NewProgram(ctx)
		fuse.MxV(p, w, fuse.NoMask(), nil, grb.PlusTimes[float64](), A, u, grb.Desc{Replace: true})
		fuse.MxM(p, grb.PlusTimes[float64](), A, A)
		fuse.Gather(p, g, w, idx, grb.Desc{Replace: true})
		fuse.Reduce(p, grb.PlusMonoid[float64](), g)
		out["eager_only"] = p
	}
	return out
}

func TestPlanGolden(t *testing.T) {
	ctx := grb.NewGaloisBLASContext(2)
	progs := planPrograms(t, ctx)
	for name, p := range progs {
		name, p := name, p
		t.Run(name, func(t *testing.T) {
			got := p.Plan().String()
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestPlanDeterministic: re-planning the same program yields the same
// schedule and listing.
func TestPlanDeterministic(t *testing.T) {
	ctx := grb.NewGaloisBLASContext(2)
	for name, p := range planPrograms(t, ctx) {
		a, b := p.Plan().String(), p.Plan().String()
		if a != b {
			t.Errorf("%s: two plans of one program differ:\n%s\nvs\n%s", name, a, b)
		}
	}
}

// TestPlanFusedShapes pins the structural outcome of the core patterns
// independently of the golden bytes.
func TestPlanFusedShapes(t *testing.T) {
	ctx := grb.NewGaloisBLASContext(2)
	progs := planPrograms(t, ctx)
	wantFused := map[string][]string{
		"bfs_round":         {"bfs-expand"},
		"pr_round":          {"fold-scale", "spmv-apply"},
		"sssp_relax":        {"relax"},
		"sssp_heavy":        {"spmv-accum"},
		"nofuse_live_temp":  {},
		"nofuse_masked_vxm": {},
		"nofuse_accum":      {},
		"eager_only":        {},
	}
	for name, want := range wantFused {
		pl := progs[name].Plan()
		var got []string
		covered := 0
		for i := range pl.Steps {
			if pl.Steps[i].Fused {
				got = append(got, pl.Steps[i].Name)
				covered += len(pl.Steps[i].Nodes())
			} else {
				covered++
			}
		}
		if covered != progs[name].Len() {
			t.Errorf("%s: plan covers %d nodes, program has %d", name, covered, progs[name].Len())
		}
		if len(got) != len(want) {
			t.Errorf("%s: fused steps %v, want %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: fused steps %v, want %v", name, got, want)
				break
			}
		}
	}
}
