package fuse

import (
	"graphstudy/internal/grb"
	"graphstudy/internal/trace"
)

// Run plans and executes the program: the one call an algorithm makes per
// recorded round body.
func (p *Program) Run() error { return p.Plan().Run() }

// RunEager executes every node in recording order with no fusion — the
// reference schedule the differential and fuzz tests compare against, and
// a debugging escape hatch.
func (p *Program) RunEager() error {
	for _, n := range p.nodes {
		if err := n.run(p.ctx); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the plan's steps in order. Each fused step emits one
// fused-category trace span tagging the decision: Bytes holds the elided
// intermediate bytes on success, and the operation name gains a ".bail"
// suffix when runtime preconditions force the eager fallback. A leading
// "fuse.plan" span records the schedule's shape (nodes in, fused steps
// out).
func (pl *Plan) Run() error {
	psp := trace.Begin(trace.CatFused, "fuse.plan")
	psp.NNZIn = int64(len(pl.prog.nodes))
	for i := range pl.Steps {
		if pl.Steps[i].Fused {
			psp.NNZOut++
		}
	}
	psp.End()
	ctx := pl.prog.ctx
	for i := range pl.Steps {
		if err := runStep(ctx, &pl.Steps[i]); err != nil {
			return err
		}
	}
	return nil
}

func runStep(ctx *grb.Context, st *Step) error {
	if !st.Fused {
		return st.nodes[0].run(ctx)
	}
	sp := trace.Begin(trace.CatFused, "fuse."+st.Name)
	defer sp.End()
	stats, applied, err := st.fused(ctx)
	if err != nil {
		return err
	}
	if !applied {
		// A precondition only checkable at execution time failed
		// (representation, density, aliasing); the window runs eagerly.
		// Identical results either way — the span just records that this
		// decision elided nothing.
		sp.Op = "fuse." + st.Name + ".bail"
		for _, n := range st.nodes {
			if err := n.run(ctx); err != nil {
				return err
			}
		}
		return nil
	}
	sp.Bytes = stats.Elided
	sp.NNZIn = stats.NNZIn
	sp.NNZOut = stats.NNZOut
	return nil
}
