package fuse

import (
	"fmt"
	"strings"

	"graphstudy/internal/grb"
)

// fusedRun executes a fused window. The bool reports whether the fused
// kernel applied; false means a runtime precondition (representation,
// density, aliasing) failed and the executor must fall back to the
// window's eager nodes.
type fusedRun func(*grb.Context) (grb.FusedStats, bool, error)

// The fuser interfaces let the (non-generic) planner obtain a typed fused
// closure from node payloads. A nil return means the payloads' element
// types disagree and the window stays eager.
type expandFuser interface{ fuseExpand(vxm any) fusedRun }
type vxmApplyFuser interface{ fuseVxMApply(apply any) fusedRun }
type foldScaleFuser interface{ fuseFoldScale(mult any) fusedRun }
type relaxFuser interface {
	fuseRelax(mult, add, sel any) fusedRun
}
type accumFuser interface{ fuseAccum(add any) fusedRun }

// Step is one unit of a plan: either a single eager node or a fused
// window of consecutive nodes.
type Step struct {
	Fused bool
	// Name is the pattern name for fused steps, the node's operation for
	// eager ones.
	Name  string
	nodes []*node
	fused fusedRun
}

// Nodes returns the ids of the nodes this step covers.
func (s *Step) Nodes() []int {
	ids := make([]int, len(s.nodes))
	for i, n := range s.nodes {
		ids[i] = n.id
	}
	return ids
}

// Plan is a program's execution schedule: the node sequence partitioned
// into eager and fused steps. Planning is purely structural — it inspects
// node metadata and payload types, never vector contents — so the same
// program always yields the same plan (the golden tests hold it to this).
type Plan struct {
	prog  *Program
	Steps []Step
}

// Plan partitions the program into steps. At each position the matchers
// run longest-pattern-first in a fixed order; the first match wins and
// planning resumes after its window.
func (p *Program) Plan() *Plan {
	pl := &Plan{prog: p}
	i := 0
	for i < len(p.nodes) {
		if st := p.matchAt(i); st != nil {
			pl.Steps = append(pl.Steps, *st)
			i += len(st.nodes)
			continue
		}
		n := p.nodes[i]
		pl.Steps = append(pl.Steps, Step{Name: n.kind.String(), nodes: []*node{n}})
		i++
	}
	return pl
}

func (p *Program) matchAt(i int) *Step {
	if st := p.matchRelax(i); st != nil {
		return st
	}
	if st := p.matchBFSExpand(i); st != nil {
		return st
	}
	if st := p.matchFoldScale(i); st != nil {
		return st
	}
	if st := p.matchSpMVApply(i); st != nil {
		return st
	}
	if st := p.matchSpMVAccum(i); st != nil {
		return st
	}
	return nil
}

// readAfter reports whether v's contents are observable by nodes from
// index `from` on: read as an input or mask source, or merged into by a
// non-replace write (which keeps v's prior entries).
func (p *Program) readAfter(from int, v any) bool {
	for _, n := range p.nodes[from:] {
		for _, in := range n.ins {
			if in == v {
				return true
			}
		}
		if n.mask.src == v {
			return true
		}
		if n.out == v && !n.replace {
			return true
		}
	}
	return false
}

// deadTemp reports whether v is a declared temporary whose value nothing
// at or after index `from` observes — the license to never materialize it.
func (p *Program) deadTemp(v any, from int) bool {
	return p.isTemp(v) && !p.readAfter(from, v)
}

// unmasked is the plain-node shape every pattern operand must have.
func unmasked(n *node) bool { return n.mask.kind == MaskNone && !n.accum }

// matchRelax matches the 4-node delta-stepping light-relaxation chain:
//
//	q    = vxm(u ⊗ A, replace)              q a dead temp
//	imp  = ewisemult(q, t, replace)         imp a dead temp
//	t    = ewiseadd(t, q)
//	next = select(q)<value(imp)> (replace)
func (p *Program) matchRelax(i int) *Step {
	if i+4 > len(p.nodes) {
		return nil
	}
	vxm, mult, add, sel := p.nodes[i], p.nodes[i+1], p.nodes[i+2], p.nodes[i+3]
	if vxm.kind != KVxM || mult.kind != KEWiseMult || add.kind != KEWiseAdd || sel.kind != KSelect {
		return nil
	}
	if !unmasked(vxm) || !vxm.replace || !unmasked(mult) || !mult.replace ||
		!unmasked(add) || add.replace || sel.accum || !sel.replace {
		return nil
	}
	q := vxm.out
	imp := mult.out
	t := add.out
	next := sel.out
	if len(mult.ins) != 2 || mult.ins[0] != q || mult.ins[1] != t {
		return nil
	}
	if len(add.ins) != 2 || add.ins[0] != t || add.ins[1] != q {
		return nil
	}
	if len(sel.ins) != 1 || sel.ins[0] != q {
		return nil
	}
	if sel.mask.kind != MaskValue || sel.mask.comp || sel.mask.src != imp {
		return nil
	}
	if q == t || q == imp || imp == t || next == q || next == t || next == imp {
		return nil
	}
	// q and imp are never materialized by the fused kernel; both must be
	// dead beyond this window.
	if !p.deadTemp(q, i+4) || !p.deadTemp(imp, i+4) {
		return nil
	}
	rf, ok := vxm.payload.(relaxFuser)
	if !ok {
		return nil
	}
	run := rf.fuseRelax(mult.payload, add.payload, sel.payload)
	if run == nil {
		return nil
	}
	return &Step{Fused: true, Name: "relax", nodes: p.nodes[i : i+4], fused: run}
}

// matchBFSExpand matches the BFS round body:
//
//	assign(d<struct(f)> = level)
//	f = vxm(f ⊗ A, lor_land)<!value(d)> (replace)
func (p *Program) matchBFSExpand(i int) *Step {
	if i+2 > len(p.nodes) {
		return nil
	}
	asg, vxm := p.nodes[i], p.nodes[i+1]
	if asg.kind != KAssign || vxm.kind != KVxM {
		return nil
	}
	if asg.mask.kind != MaskStruct || asg.mask.comp || asg.accum || asg.replace {
		return nil
	}
	if vxm.accum || !vxm.replace || vxm.semiring != "lor_land" {
		return nil
	}
	d := asg.out
	f := asg.mask.src
	if d == f || vxm.out != f || len(vxm.ins) != 2 || vxm.ins[0] != f {
		return nil
	}
	if vxm.mask.kind != MaskValue || !vxm.mask.comp || vxm.mask.src != d {
		return nil
	}
	ef, ok := asg.payload.(expandFuser)
	if !ok {
		return nil
	}
	run := ef.fuseExpand(vxm.payload)
	if run == nil {
		return nil
	}
	return &Step{Fused: true, Name: "bfs-expand", nodes: p.nodes[i : i+2], fused: run}
}

// matchFoldScale matches PageRank's residual pair, two full-width passes
// sharing input x:
//
//	w1 = ewiseadd(w1, x)
//	w2 = ewisemult(x, y, replace)
func (p *Program) matchFoldScale(i int) *Step {
	if i+2 > len(p.nodes) {
		return nil
	}
	add, mult := p.nodes[i], p.nodes[i+1]
	if add.kind != KEWiseAdd || mult.kind != KEWiseMult {
		return nil
	}
	if !unmasked(add) || add.replace || !unmasked(mult) || !mult.replace {
		return nil
	}
	w1 := add.out
	if len(add.ins) != 2 || add.ins[0] != w1 {
		return nil
	}
	x := add.ins[1]
	if x == w1 || len(mult.ins) != 2 || mult.ins[0] != x {
		return nil
	}
	y := mult.ins[1]
	w2 := mult.out
	if w2 == w1 || w2 == x || w2 == y || w1 == y {
		return nil
	}
	ff, ok := add.payload.(foldScaleFuser)
	if !ok {
		return nil
	}
	run := ff.fuseFoldScale(mult.payload)
	if run == nil {
		return nil
	}
	return &Step{Fused: true, Name: "fold-scale", nodes: p.nodes[i : i+2], fused: run}
}

// matchSpMVApply matches a product immediately re-mapped in place:
//
//	x = vxm(u ⊗ A, replace)
//	x = apply(op(x), replace)
func (p *Program) matchSpMVApply(i int) *Step {
	if i+2 > len(p.nodes) {
		return nil
	}
	vxm, app := p.nodes[i], p.nodes[i+1]
	if vxm.kind != KVxM || app.kind != KApply {
		return nil
	}
	if !unmasked(vxm) || !vxm.replace || !unmasked(app) || !app.replace {
		return nil
	}
	x := vxm.out
	if app.out != x || len(app.ins) != 1 || app.ins[0] != x {
		return nil
	}
	vf, ok := vxm.payload.(vxmApplyFuser)
	if !ok {
		return nil
	}
	run := vf.fuseVxMApply(app.payload)
	if run == nil {
		return nil
	}
	return &Step{Fused: true, Name: "spmv-apply", nodes: p.nodes[i : i+2], fused: run}
}

// matchSpMVAccum matches a product folded into an accumulator vector via
// a dead temporary:
//
//	q = vxm(u ⊗ A, replace)       q a dead temp
//	t = ewiseadd(t, q)
func (p *Program) matchSpMVAccum(i int) *Step {
	if i+2 > len(p.nodes) {
		return nil
	}
	vxm, add := p.nodes[i], p.nodes[i+1]
	if vxm.kind != KVxM || add.kind != KEWiseAdd {
		return nil
	}
	if !unmasked(vxm) || !vxm.replace || !unmasked(add) || add.replace {
		return nil
	}
	q := vxm.out
	t := add.out
	if q == t || len(add.ins) != 2 || add.ins[0] != t || add.ins[1] != q {
		return nil
	}
	if !p.deadTemp(q, i+2) {
		return nil
	}
	af, ok := vxm.payload.(accumFuser)
	if !ok {
		return nil
	}
	run := af.fuseAccum(add.payload)
	if run == nil {
		return nil
	}
	return &Step{Fused: true, Name: "spmv-accum", nodes: p.nodes[i : i+2], fused: run}
}

// namer assigns stable display names (v0, v1, ... / A0, A1, ... / r0 for
// result handles) by first appearance in node order. A linear-probed
// slice, not a map: String output must be byte-deterministic.
type namer struct {
	keys  []any
	names []string
	vecs  int
	mats  int
	refs  int
}

func (nm *namer) name(v any) string {
	if v == nil {
		return "_"
	}
	for i, k := range nm.keys {
		if k == v {
			return nm.names[i]
		}
	}
	var s string
	switch v.(type) {
	case *grb.Matrix[bool], *grb.Matrix[int32], *grb.Matrix[int64],
		*grb.Matrix[uint32], *grb.Matrix[uint64], *grb.Matrix[float32], *grb.Matrix[float64]:
		s = fmt.Sprintf("A%d", nm.mats)
		nm.mats++
	case *Scalar[bool], *Scalar[int32], *Scalar[int64],
		*Scalar[uint32], *Scalar[uint64], *Scalar[float32], *Scalar[float64],
		*MatRef[bool], *MatRef[int32], *MatRef[int64],
		*MatRef[uint32], *MatRef[uint64], *MatRef[float32], *MatRef[float64]:
		s = fmt.Sprintf("r%d", nm.refs)
		nm.refs++
	default:
		s = fmt.Sprintf("v%d", nm.vecs)
		nm.vecs++
	}
	nm.keys = append(nm.keys, v)
	nm.names = append(nm.names, s)
	return s
}

func (nm *namer) describeMask(m MaskSpec) string {
	if m.kind == MaskNone {
		return ""
	}
	shape := "struct"
	if m.kind == MaskValue {
		shape = "value"
	}
	comp := ""
	if m.comp {
		comp = "!"
	}
	return fmt.Sprintf(" mask=%s%s(%s)", comp, shape, nm.name(m.src))
}

func (nm *namer) describe(n *node) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d %s out=%s", n.id, n.kind, nm.name(n.out))
	if len(n.ins) > 0 {
		b.WriteString(" ins=[")
		for i, in := range n.ins {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(nm.name(in))
		}
		b.WriteByte(']')
	}
	b.WriteString(nm.describeMask(n.mask))
	if n.semiring != "" {
		fmt.Fprintf(&b, " semiring=%s", n.semiring)
	}
	if n.accum {
		b.WriteString(" accum")
	}
	if n.replace {
		b.WriteString(" replace")
	}
	return b.String()
}

// String renders the program and its schedule in a stable textual form,
// the format the planner golden tests snapshot.
func (pl *Plan) String() string {
	var b strings.Builder
	nm := &namer{}
	b.WriteString("nodes:\n")
	for _, n := range pl.prog.nodes {
		b.WriteString("  ")
		b.WriteString(nm.describe(n))
		b.WriteByte('\n')
	}
	if len(pl.prog.temps) > 0 {
		b.WriteString("temps:")
		for _, t := range pl.prog.temps {
			b.WriteByte(' ')
			b.WriteString(nm.name(t))
		}
		b.WriteByte('\n')
	}
	b.WriteString("plan:\n")
	for i := range pl.Steps {
		st := &pl.Steps[i]
		mode := "eager"
		if st.Fused {
			mode = "fused"
		}
		fmt.Fprintf(&b, "  %s %s [", mode, st.Name)
		for j, n := range st.nodes {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "n%d", n.id)
		}
		b.WriteString("]\n")
	}
	return b.String()
}
