package gen

import (
	"fmt"
	"strings"
)

// ParseScale converts a scale name ("test" or "bench", case-insensitive).
// Binaries should use this instead of comparing strings so that a typo like
// -scale=benhc errors out rather than silently selecting a default.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "test":
		return ScaleTest, nil
	case "bench":
		return ScaleBench, nil
	}
	return 0, fmt.Errorf("gen: unknown scale %q (want test or bench)", s)
}

// CatalogEntry describes one suite graph for listings. Binaries, examples,
// and the graphd service all render graph lists from this one catalog
// instead of hardcoding name lists.
type CatalogEntry struct {
	// Name is the paper's graph name (e.g. "road-USA", "rmat22").
	Name string `json:"name"`
	// Description is the generator family used (Table I's archetype).
	Description string `json:"description"`
	// Weighted reports whether edges carry weights.
	Weighted bool `json:"weighted"`
	// RoadNetwork marks the two road graphs (source vertex 0, ktruss k=4).
	RoadNetwork bool `json:"roadNetwork"`
	// KTrussK and Delta are the per-input study parameters.
	KTrussK uint32 `json:"ktrussK"`
	Delta   uint32 `json:"delta"`
}

// Catalog returns one entry per suite graph, in paper order.
func Catalog() []CatalogEntry {
	out := make([]CatalogEntry, len(inputs))
	for i, in := range inputs {
		out[i] = CatalogEntry{
			Name:        in.Name,
			Description: in.Archetype,
			Weighted:    in.Weighted,
			RoadNetwork: in.RoadNetwork,
			KTrussK:     in.KTrussK(),
			Delta:       in.Delta(),
		}
	}
	return out
}

// Describe returns the catalog description for a graph name, or "" when the
// name is not in the suite.
func Describe(name string) string {
	for _, in := range inputs {
		if in.Name == name {
			return in.Archetype
		}
	}
	return ""
}
