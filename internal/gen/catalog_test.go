package gen

import (
	"strings"
	"testing"
)

func TestParseScaleRoundTrip(t *testing.T) {
	for _, sc := range []Scale{ScaleTest, ScaleBench} {
		for _, form := range []string{sc.String(), strings.ToUpper(sc.String())} {
			got, err := ParseScale(form)
			if err != nil || got != sc {
				t.Fatalf("ParseScale(%q) = %v, %v; want %v", form, got, err, sc)
			}
		}
	}
}

func TestParseScaleErrors(t *testing.T) {
	// The historical bug: anything unrecognized silently became bench.
	for _, bad := range []string{"", "benhc", "full", "Test ", "0"} {
		got, err := ParseScale(bad)
		if err == nil {
			t.Fatalf("ParseScale(%q) = %v, want error", bad, got)
		}
		if !strings.Contains(err.Error(), "unknown scale") {
			t.Fatalf("ParseScale(%q) error %q should name the problem", bad, err)
		}
	}
}

func TestCatalogMatchesSuite(t *testing.T) {
	cat := Catalog()
	suite := Suite()
	if len(cat) != len(suite) {
		t.Fatalf("catalog has %d entries, suite has %d", len(cat), len(suite))
	}
	for i, e := range cat {
		in := suite[i]
		if e.Name != in.Name || e.Description != in.Archetype ||
			e.Weighted != in.Weighted || e.RoadNetwork != in.RoadNetwork ||
			e.KTrussK != in.KTrussK() || e.Delta != in.Delta() {
			t.Fatalf("entry %d = %+v does not match input %q", i, e, in.Name)
		}
		if e.Description == "" {
			t.Fatalf("entry %q has no description", e.Name)
		}
		if Describe(e.Name) != e.Description {
			t.Fatalf("Describe(%q) = %q, want %q", e.Name, Describe(e.Name), e.Description)
		}
	}
	if Describe("no-such-graph") != "" {
		t.Fatal("Describe of unknown graph should be empty")
	}
}
