// Package gen provides deterministic synthetic graph generators that stand
// in for the nine input graphs of the study (Table I). Real inputs like
// road-USA, twitter40, and uk07 are multi-gigabyte downloads that are not
// available here, so each is replaced by a generator reproducing its
// structural archetype: degree distribution shape, diameter regime, locality,
// and weight scheme. See DESIGN.md ("Substitutions") for the argument that
// this preserves the study's differential effects.
package gen

// rng is a splitmix64 generator: tiny, fast, and deterministic across
// platforms, which keeps generated inputs byte-identical between runs.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uint32n returns a uniform value in [0, n).
func (r *rng) uint32n(n uint32) uint32 {
	if n == 0 {
		return 0
	}
	return uint32(r.next() % uint64(n))
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float64v returns a uniform value in [0, 1).
func (r *rng) float64v() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// weight returns a random edge weight in [1, maxW].
func (r *rng) weight(maxW uint32) uint32 {
	return 1 + r.uint32n(maxW)
}
