package gen

import (
	"fmt"
	"sort"
	"sync"

	"graphstudy/internal/graph"
)

// Scale selects the size of the generated suite. The study's real inputs
// range to billions of edges; these scales keep the same structural
// relationships at laptop size.
type Scale int

const (
	// ScaleTest is for unit tests: thousands of edges.
	ScaleTest Scale = iota
	// ScaleBench is for the reproduction runs: hundreds of thousands to
	// about a million edges per graph.
	ScaleBench
)

func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleBench:
		return "bench"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// Input describes one named graph of the suite.
type Input struct {
	// Name matches the paper's graph name (e.g. "road-USA", "rmat22").
	Name string
	// Archetype describes the generator family used.
	Archetype string
	// Weighted reports whether edges carry weights.
	Weighted bool
	// RoadNetwork marks the two road graphs, which use source vertex 0 and
	// ktruss k=4 in the study instead of the defaults.
	RoadNetwork bool
	// BigDelta marks eukarya, for which the study uses delta 2^20.
	BigDelta bool
	build    func(s Scale) *graph.Graph
}

// Build generates the graph at the given scale. Results are memoized; the
// returned graph is shared and must be treated as read-only.
func (in *Input) Build(s Scale) *graph.Graph {
	key := cacheKey{in.Name, s}
	cacheMu.Lock()
	entry, ok := cache[key]
	if !ok {
		entry = &cacheEntry{}
		cache[key] = entry
	}
	cacheMu.Unlock()
	entry.once.Do(func() {
		g := validate(in.Name, in.build(s))
		g.SortAdjacency()
		g.BuildIn()
		entry.g = g
	})
	return entry.g
}

type cacheKey struct {
	name string
	s    Scale
}

type cacheEntry struct {
	once sync.Once
	g    *graph.Graph
}

var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]*cacheEntry{}
)

// SetCached seeds the build memo for (name, s) with a graph decoded from
// elsewhere (the dataset store), so later Build calls reuse it instead of
// regenerating. If a graph is already memoized the existing one wins; the
// canonical graph is returned either way, so callers hold the same pointer
// core.Prepare will see.
func SetCached(name string, s Scale, g *graph.Graph) *graph.Graph {
	key := cacheKey{name, s}
	cacheMu.Lock()
	entry, ok := cache[key]
	if !ok {
		entry = &cacheEntry{}
		cache[key] = entry
	}
	cacheMu.Unlock()
	entry.once.Do(func() { entry.g = g })
	return entry.g
}

// DropCached evicts the build memo for (name, s) so its graph can be
// garbage-collected. The dataset registry calls this when a graph leaves its
// memory budget; without it the memo pins every graph ever built for the
// life of the process.
func DropCached(name string, s Scale) {
	cacheMu.Lock()
	delete(cache, cacheKey{name, s})
	cacheMu.Unlock()
}

// CachedCount reports how many build memos are resident (tests and metrics).
func CachedCount() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return len(cache)
}

// pick returns a or b depending on scale.
func pick[T any](s Scale, test, bench T) T {
	if s == ScaleTest {
		return test
	}
	return bench
}

// inputs lists the nine graphs of Table I, ordered as in the paper
// (by CSR size, ascending).
var inputs = []*Input{
	{
		Name: "road-USA-W", Archetype: "grid road network", Weighted: true, RoadNetwork: true,
		build: func(s Scale) *graph.Graph {
			return Grid(pick(s, 8, 52), pick(s, 8, 52), pick(s, 2, 4), true, 1000, 0xA11CE)
		},
	},
	{
		Name: "road-USA", Archetype: "grid road network", Weighted: true, RoadNetwork: true,
		build: func(s Scale) *graph.Graph {
			return Grid(pick(s, 12, 104), pick(s, 12, 104), pick(s, 2, 4), true, 1000, 0xB0B)
		},
	},
	{
		Name: "rmat22", Archetype: "RMAT power law", Weighted: true,
		build: func(s Scale) *graph.Graph {
			return RMAT(pick(s, 9, 15), 16, 0.57, 0.19, 0.19, true, 255, 0xC0FFEE)
		},
	},
	{
		Name: "indochina04", Archetype: "web crawl", Weighted: true,
		build: func(s Scale) *graph.Graph {
			return WebCrawl(pick(s, 600, 26000), pick(s, 12, 260), 26, false, true, 255, 0xD0C)
		},
	},
	{
		Name: "eukarya", Archetype: "protein clusters", Weighted: true, BigDelta: true,
		build: func(s Scale) *graph.Graph {
			return ProteinClusters(pick(s, 12, 280), pick(s, 12, 36), true, 1<<20, 0xE0E)
		},
	},
	{
		Name: "rmat26", Archetype: "RMAT power law", Weighted: true,
		build: func(s Scale) *graph.Graph {
			return RMAT(pick(s, 10, 16), 16, 0.57, 0.19, 0.19, true, 255, 0xFEED)
		},
	},
	{
		Name: "twitter40", Archetype: "preferential attachment", Weighted: true,
		build: func(s Scale) *graph.Graph {
			return PrefAttach(pick(s, 700, 34000), pick(s, 4, 16), false, true, 255, 0x7117)
		},
	},
	{
		Name: "friendster", Archetype: "preferential attachment (undirected)", Weighted: true,
		build: func(s Scale) *graph.Graph {
			return PrefAttach(pick(s, 700, 38000), pick(s, 4, 13), true, true, 255, 0xF12E)
		},
	},
	{
		Name: "uk07", Archetype: "web crawl (dense)", Weighted: true,
		build: func(s Scale) *graph.Graph {
			return WebCrawl(pick(s, 500, 10000), pick(s, 25, 220), pick(s, 30, 100), true, true, 255, 0x1107)
		},
	},
}

// NewExternal wraps a graph that lives outside the generated suite (an
// imported SNAP edge list or Matrix Market dataset) as an Input, so the core
// harness can run workloads on it exactly as it does on generated graphs.
// The build func must return the same graph at every scale — external
// datasets have one concrete size. Study parameters (source vertex, ktruss
// k, delta) use the non-road defaults.
func NewExternal(name string, weighted bool, build func(s Scale) *graph.Graph) *Input {
	return &Input{
		Name:      name,
		Archetype: "external dataset",
		Weighted:  weighted,
		build:     build,
	}
}

// Suite returns the nine inputs in paper order.
func Suite() []*Input {
	out := make([]*Input, len(inputs))
	copy(out, inputs)
	return out
}

// ByName looks up an input by its paper name.
func ByName(name string) (*Input, error) {
	for _, in := range inputs {
		if in.Name == name {
			return in, nil
		}
	}
	names := make([]string, len(inputs))
	for i, in := range inputs {
		names[i] = in.Name
	}
	sort.Strings(names)
	return nil, fmt.Errorf("gen: unknown graph %q (have %v)", name, names)
}

// Names returns the suite's graph names in paper order.
func Names() []string {
	out := make([]string, len(inputs))
	for i, in := range inputs {
		out[i] = in.Name
	}
	return out
}

// Source returns the bfs/sssp source vertex the study uses for this input:
// the maximum out-degree vertex, except vertex 0 for road networks.
func (in *Input) Source(g *graph.Graph) uint32 {
	if in.RoadNetwork {
		return 0
	}
	return g.MaxOutDegreeVertex()
}

// KTrussK returns the k used for ktruss on this input (4 for road networks,
// 7 otherwise), matching the study's setup.
func (in *Input) KTrussK() uint32 {
	if in.RoadNetwork {
		return 4
	}
	return 7
}

// Delta returns the delta-stepping bucket width for this input: 2^13 by
// default, 2^20 for eukarya, matching the study's setup.
func (in *Input) Delta() uint32 {
	if in.BigDelta {
		return 1 << 20
	}
	return 1 << 13
}
