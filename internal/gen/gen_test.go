package gen

import (
	"testing"

	"graphstudy/internal/graph"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	c := newRNG(43)
	if newRNG(42).next() == c.next() {
		t.Fatal("different seeds gave same first value")
	}
}

func TestRNGWeightRange(t *testing.T) {
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		w := r.weight(255)
		if w < 1 || w > 255 {
			t.Fatalf("weight %d out of [1,255]", w)
		}
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(5, 7, 3, true, 100, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// nodes = 35 intersections + (5*6 + 7*4) grid edges * 2 interior each
	wantNodes := uint32(35 + 58*2)
	if g.NumNodes != wantNodes {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes, wantNodes)
	}
	// Every edge must be bidirectional with equal weight.
	for u := uint32(0); u < g.NumNodes; u++ {
		adj := g.OutEdges(u)
		for i, v := range adj {
			if !g.HasEdge(v, u) {
				t.Fatalf("grid edge (%d,%d) not mirrored", u, v)
			}
			_ = i
		}
	}
	// Road archetype: avg degree between 2 and 4, diameter large.
	avg := float64(g.NumEdges()) / float64(g.NumNodes)
	if avg < 2 || avg > 4.2 {
		t.Fatalf("grid avg degree %.2f out of road range", avg)
	}
	if d := g.ApproxDiameter(); d < 15 {
		t.Fatalf("grid diameter %d too small", d)
	}
}

func TestRMATPowerLaw(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, true, 255, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 1024 {
		t.Fatalf("NumNodes = %d", g.NumNodes)
	}
	// Power-law: max degree far above average.
	avg := float64(g.NumEdges()) / float64(g.NumNodes)
	if maxd := float64(g.MaxOutDegree()); maxd < 5*avg {
		t.Fatalf("rmat max degree %.0f not heavy-tailed vs avg %.1f", maxd, avg)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 4, 0.57, 0.19, 0.19, false, 0, 99)
	b := RMAT(8, 4, 0.57, 0.19, 0.19, false, 0, 99)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("rmat not deterministic")
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("rmat edge mismatch")
		}
	}
}

func TestWebCrawlConnectivityAndHubs(t *testing.T) {
	g := WebCrawl(800, 16, 12, false, false, 0, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hub pages attract inter-host links: max in-degree well above average.
	avg := float64(g.NumEdges()) / float64(g.NumNodes)
	if maxd := float64(g.MaxInDegree()); maxd < 3*avg {
		t.Fatalf("webcrawl max in-degree %.0f vs avg %.1f: no hubs", maxd, avg)
	}
}

func TestWebCrawlChainLocalityRaisesDiameter(t *testing.T) {
	global := WebCrawl(1500, 60, 10, false, false, 0, 5)
	local := WebCrawl(1500, 60, 10, true, false, 0, 5)
	dg, dl := global.ApproxDiameter(), local.ApproxDiameter()
	if dl <= dg {
		t.Fatalf("chain-local crawl diameter %d <= global crawl diameter %d", dl, dg)
	}
	if dl < 10 {
		t.Fatalf("chain-local diameter %d too small for uk07 archetype", dl)
	}
}

func TestPrefAttachSymmetric(t *testing.T) {
	g := PrefAttach(500, 3, true, true, 255, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < g.NumNodes; u++ {
		for _, v := range g.OutEdges(u) {
			if !g.HasEdge(v, u) {
				t.Fatalf("symmetric prefattach missing reverse edge (%d,%d)", v, u)
			}
		}
	}
}

func TestPrefAttachHeavyTail(t *testing.T) {
	g := PrefAttach(2000, 5, false, false, 0, 17)
	avg := float64(g.NumEdges()) / float64(g.NumNodes)
	if maxd := float64(g.MaxInDegree()); maxd < 8*avg {
		t.Fatalf("prefattach max in-degree %.0f vs avg %.1f: tail too light", maxd, avg)
	}
}

func TestProteinClustersWeighted(t *testing.T) {
	g := ProteinClusters(8, 10, true, 1<<20, 23)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("protein graph must be weighted")
	}
	// Dense clusters: average degree should be near cluster size.
	avg := float64(g.NumEdges()) / float64(g.NumNodes)
	if avg < 3 {
		t.Fatalf("protein avg degree %.1f too sparse", avg)
	}
}

func TestRandomGraph(t *testing.T) {
	g := Random(100, 500, true, 10, 31)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 || g.NumEdges() > 500 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestSuiteNamesAndLookup(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("suite has %d graphs, want 9", len(names))
	}
	for _, name := range names {
		in, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if in.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, in.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown graph")
	}
}

func TestSuiteTestScaleProperties(t *testing.T) {
	for _, in := range Suite() {
		g := in.Build(ScaleTest)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if !g.Weighted() {
			t.Fatalf("%s: suite graphs must be weighted for sssp", in.Name)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", in.Name)
		}
		// Memoization returns the same object.
		if in.Build(ScaleTest) != g {
			t.Fatalf("%s: Build not memoized", in.Name)
		}
	}
}

func TestSuiteStudyParameters(t *testing.T) {
	road, _ := ByName("road-USA")
	if road.KTrussK() != 4 || !road.RoadNetwork {
		t.Fatal("road-USA should use ktruss k=4")
	}
	g := road.Build(ScaleTest)
	if road.Source(g) != 0 {
		t.Fatal("road networks use source vertex 0")
	}
	euk, _ := ByName("eukarya")
	if euk.Delta() != 1<<20 {
		t.Fatal("eukarya delta should be 2^20")
	}
	tw, _ := ByName("twitter40")
	if tw.Delta() != 1<<13 || tw.KTrussK() != 7 {
		t.Fatal("default delta/k wrong")
	}
	gtw := tw.Build(ScaleTest)
	if tw.Source(gtw) != gtw.MaxOutDegreeVertex() {
		t.Fatal("non-road source should be max out-degree vertex")
	}
}

func TestRoadDiameterOrdering(t *testing.T) {
	// road-USA (bigger grid) must have a larger diameter than road-USA-W,
	// mirroring Table I (6261 vs 3137).
	w, _ := ByName("road-USA-W")
	u, _ := ByName("road-USA")
	dw := w.Build(ScaleTest).ApproxDiameter()
	du := u.Build(ScaleTest).ApproxDiameter()
	if du <= dw {
		t.Fatalf("diameters: road-USA %d <= road-USA-W %d", du, dw)
	}
}

func TestSuiteGraphsAreSortedAndHaveCSC(t *testing.T) {
	in, _ := ByName("rmat22")
	g := in.Build(ScaleTest)
	if !g.HasIn() {
		t.Fatal("suite graphs should have CSC built")
	}
	for u := uint32(0); u < g.NumNodes; u++ {
		adj := g.OutEdges(u)
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatal("suite adjacency not sorted/deduped")
			}
		}
	}
}

var sinkGraph *graph.Graph

func BenchmarkGenerateRMATTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkGraph = RMAT(10, 8, 0.57, 0.19, 0.19, true, 255, uint64(i))
	}
}
