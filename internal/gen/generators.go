package gen

import (
	"fmt"

	"graphstudy/internal/graph"
)

// Grid generates a road-network analog: a rows x cols grid of intersections
// whose edges are subdivided into subdiv chain segments, yielding the
// low-degree, huge-diameter structure of road graphs (Table I: road-USA has
// |E|/|V| = 2.4 and diameter in the thousands). Edges run in both directions.
// If weighted, each undirected segment gets a random weight in [1, maxW],
// identical in both directions.
func Grid(rows, cols, subdiv int, weighted bool, maxW uint32, seed uint64) *graph.Graph {
	if subdiv < 1 {
		subdiv = 1
	}
	r := newRNG(seed)
	intersections := rows * cols
	gridEdges := rows*(cols-1) + cols*(rows-1)
	n := intersections + gridEdges*(subdiv-1)
	b := graph.NewBuilder(uint32(n), weighted)
	b.Reserve(2 * gridEdges * subdiv)

	next := uint32(intersections) // next chain-interior vertex ID
	addChain := func(u, v uint32) {
		prev := u
		for s := 1; s < subdiv; s++ {
			mid := next
			next++
			w := uint32(0)
			if weighted {
				w = r.weight(maxW)
			}
			b.AddEdge(prev, mid, w)
			b.AddEdge(mid, prev, w)
			prev = mid
		}
		w := uint32(0)
		if weighted {
			w = r.weight(maxW)
		}
		b.AddEdge(prev, v, w)
		b.AddEdge(v, prev, w)
	}
	id := func(i, j int) uint32 { return uint32(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				addChain(id(i, j), id(i, j+1))
			}
			if i+1 < rows {
				addChain(id(i, j), id(i+1, j))
			}
		}
	}
	return b.BuildDedup(graph.MinWeight)
}

// RMAT generates a recursive-matrix power-law graph (Chakrabarti et al.),
// the generator behind the study's rmat22/rmat26 inputs. scale is log2 of
// the vertex count; avgDeg directed edges are drawn per vertex with the
// standard Graph500 probabilities unless overridden.
func RMAT(scale int, avgDeg int, a, b, c float64, weighted bool, maxW uint32, seed uint64) *graph.Graph {
	n := uint32(1) << scale
	m := int(n) * avgDeg
	r := newRNG(seed)
	bl := graph.NewBuilder(n, weighted)
	bl.Reserve(m)
	for e := 0; e < m; e++ {
		src, dst := uint32(0), uint32(0)
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.float64v()
			switch {
			case p < a:
				// top-left: no bits set
			case p < a+b:
				dst |= 1 << bit
			case p < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		w := uint32(0)
		if weighted {
			w = r.weight(maxW)
		}
		bl.AddEdge(src, dst, w)
	}
	return bl.BuildDedup(graph.MinWeight)
}

// WebCrawl generates a web-graph analog (indochina04/uk07 archetype):
// vertices are pages grouped into hosts with power-law host sizes; pages
// link densely within their host (locality, near-cliques), and hosts link to
// "hub" pages of other hosts (huge max in-degree, Table I's Din up to 2M).
//
// chainLocal controls the inter-host topology: false gives global hub links
// and a tiny diameter (indochina04's approximate diameter is 2), true makes
// most inter-host links chain-local so the crawl has a long spine (uk07's
// approximate diameter is 115).
func WebCrawl(pages int, hosts int, avgDeg int, chainLocal bool, weighted bool, maxW uint32, seed uint64) *graph.Graph {
	r := newRNG(seed)
	// Power-law host sizes: host h gets a share ~ 1/(h+1), normalized.
	sizes := make([]int, hosts)
	total := 0.0
	weightsf := make([]float64, hosts)
	for h := 0; h < hosts; h++ {
		weightsf[h] = 1.0 / float64(h+1)
		total += weightsf[h]
	}
	assigned := 0
	for h := 0; h < hosts; h++ {
		sizes[h] = int(float64(pages) * weightsf[h] / total)
		if sizes[h] < 2 {
			sizes[h] = 2
		}
		assigned += sizes[h]
	}
	// Adjust the first host to hit the requested page count.
	if d := pages - assigned; d > 0 {
		sizes[0] += d
	}
	start := make([]uint32, hosts+1)
	for h := 0; h < hosts; h++ {
		start[h+1] = start[h] + uint32(sizes[h])
	}
	n := start[hosts]

	b := graph.NewBuilder(n, weighted)
	m := int(n) * avgDeg
	b.Reserve(m)
	wt := func() uint32 {
		if weighted {
			return r.weight(maxW)
		}
		return 0
	}
	// Host hub = first page of the host.
	for h := 0; h < hosts; h++ {
		lo, hi := start[h], start[h+1]
		size := hi - lo
		for p := lo; p < hi; p++ {
			// ~85% of links intra-host (locality), rest to other hosts' hubs
			// with preferential bias toward low-numbered (big) hosts.
			deg := avgDeg/2 + r.intn(avgDeg)
			for k := 0; k < deg; k++ {
				switch {
				case r.float64v() < 0.85:
					b.AddEdge(p, lo+r.uint32n(size), wt())
				case chainLocal:
					// Chain-local inter-host link: a nearby host's hub. Any
					// global link would collapse the undirected diameter, so
					// the uk07 archetype has none.
					off := 1 + r.intn(3)
					dst := h + off
					if r.float64v() < 0.5 {
						dst = h - off
					}
					if dst >= 0 && dst < hosts {
						b.AddEdge(p, start[dst], wt())
					}
				default:
					// Global hub link, Zipf-ish toward big (low-index) hosts.
					t := r.float64v()
					dst := int(t * t * t * float64(hosts))
					if dst >= hosts {
						dst = hosts - 1
					}
					b.AddEdge(p, start[dst], wt())
				}
			}
		}
		// Adjacent hosts are always linked so the crawl is weakly connected.
		if h+1 < hosts {
			b.AddEdge(hi-1, start[h+1], wt())
			b.AddEdge(start[h+1], hi-1, wt())
		}
	}
	return b.BuildDedup(graph.MinWeight)
}

// PrefAttach generates a preferential-attachment social-network analog
// (twitter40/friendster archetype): each new vertex draws m targets
// proportionally to current in-degree (plus one), producing a heavy-tailed
// in-degree distribution and tiny diameter. If symmetric, every edge is
// mirrored (friendster is undirected).
func PrefAttach(n int, m int, symmetric bool, weighted bool, maxW uint32, seed uint64) *graph.Graph {
	r := newRNG(seed)
	b := graph.NewBuilder(uint32(n), weighted)
	b.Reserve(n * m * 2)
	// targets holds one entry per edge endpoint, so sampling uniformly from
	// it is sampling proportional to degree (the standard BA trick).
	targets := make([]uint32, 0, n*m*2)
	targets = append(targets, 0)
	wt := func() uint32 {
		if weighted {
			return r.weight(maxW)
		}
		return 0
	}
	for v := 1; v < n; v++ {
		deg := 1 + r.intn(2*m) // vary out-degree for a heavier tail
		for k := 0; k < deg; k++ {
			var dst uint32
			if r.float64v() < 0.9 {
				dst = targets[r.intn(len(targets))]
			} else {
				dst = r.uint32n(uint32(v))
			}
			if dst == uint32(v) {
				continue
			}
			w := wt()
			b.AddEdge(uint32(v), dst, w)
			if symmetric {
				b.AddEdge(dst, uint32(v), w)
			}
			targets = append(targets, dst)
		}
		targets = append(targets, uint32(v))
	}
	return b.BuildDedup(graph.MinWeight)
}

// ProteinClusters generates a protein-similarity-network analog (eukarya
// archetype): dense clusters (families of similar proteins) connected by a
// sparse weighted backbone. The paper's eukarya graph has average degree 110,
// moderate diameter (48), and large edge weights that make delta-stepping's
// bucket choice matter (the study had to raise delta to 2^20 for it).
func ProteinClusters(clusters int, meanSize int, weighted bool, maxW uint32, seed uint64) *graph.Graph {
	r := newRNG(seed)
	sizes := make([]int, clusters)
	n := 0
	for c := range sizes {
		sizes[c] = meanSize/2 + r.intn(meanSize)
		n += sizes[c]
	}
	start := make([]uint32, clusters+1)
	for c := 0; c < clusters; c++ {
		start[c+1] = start[c] + uint32(sizes[c])
	}
	b := graph.NewBuilder(uint32(n), weighted)
	wt := func(intra bool) uint32 {
		if !weighted {
			return 0
		}
		if intra {
			return r.weight(maxW / 64) // cheap edges inside a family
		}
		return maxW/2 + r.weight(maxW/2) // expensive backbone edges
	}
	for c := 0; c < clusters; c++ {
		lo, hi := start[c], start[c+1]
		size := int(hi - lo)
		// Dense intra-cluster connectivity: ~70% of pairs, both directions.
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if r.float64v() < 0.7 {
					w := wt(true)
					b.AddEdge(lo+uint32(i), lo+uint32(j), w)
					b.AddEdge(lo+uint32(j), lo+uint32(i), w)
				}
			}
		}
		// Backbone: chain plus a few window-local links. Keeping the links
		// local preserves the moderate diameter of the real protein network
		// (Table I: 48); global links would collapse it.
		if c+1 < clusters {
			w := wt(false)
			b.AddEdge(lo, start[c+1], w)
			b.AddEdge(start[c+1], lo, w)
		}
		for k := 0; k < 2; k++ {
			other := c - 8 + r.intn(17)
			if other == c || other < 0 || other >= clusters {
				continue
			}
			w := wt(false)
			b.AddEdge(lo, start[other], w)
			b.AddEdge(start[other], lo, w)
		}
	}
	return b.BuildDedup(graph.MinWeight)
}

// Random generates a uniform Erdős–Rényi-style directed multigraph with n
// vertices and m edges, used by tests and fuzzing.
func Random(n uint32, m int, weighted bool, maxW uint32, seed uint64) *graph.Graph {
	r := newRNG(seed)
	b := graph.NewBuilder(n, weighted)
	b.Reserve(m)
	for e := 0; e < m; e++ {
		w := uint32(0)
		if weighted {
			w = r.weight(maxW)
		}
		b.AddEdge(r.uint32n(n), r.uint32n(n), w)
	}
	return b.BuildDedup(graph.MinWeight)
}

// Validate wraps graph.Validate with generator context for error messages.
func validate(name string, g *graph.Graph) *graph.Graph {
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("gen: generator %q produced invalid graph: %v", name, err))
	}
	return g
}
