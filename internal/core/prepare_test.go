package core

import (
	"testing"

	"graphstudy/internal/gen"
)

// TestDropPreparedFreesBothCaches is the regression test for the Prepare
// leak: dropping a prepared input must remove both the prepared matrix forms
// and the gen build memo that pins the base graph, otherwise "eviction"
// frees no memory at all.
func TestDropPreparedFreesBothCaches(t *testing.T) {
	in, err := gen.ByName("rmat22")
	if err != nil {
		t.Fatal(err)
	}
	// Other tests in this package may already have prepared rmat22@test;
	// drop it first so the deltas below are deterministic.
	DropPrepared(in.Name, gen.ScaleTest)
	basePrep, baseGen := PreparedCount(), gen.CachedCount()

	p := Prepare(in, gen.ScaleTest)
	if p == nil || p.G == nil {
		t.Fatal("Prepare returned nil")
	}
	if got := PreparedCount(); got != basePrep+1 {
		t.Fatalf("PreparedCount after Prepare = %d, want %d", got, basePrep+1)
	}
	if got := gen.CachedCount(); got != baseGen+1 {
		t.Fatalf("gen.CachedCount after Prepare = %d, want %d", got, baseGen+1)
	}

	DropPrepared(in.Name, gen.ScaleTest)
	if got := PreparedCount(); got != basePrep {
		t.Fatalf("PreparedCount after DropPrepared = %d, want %d", got, basePrep)
	}
	if got := gen.CachedCount(); got != baseGen {
		t.Fatalf("gen.CachedCount after DropPrepared = %d, want %d", got, baseGen)
	}

	// A fresh Prepare after the drop must rebuild cleanly.
	p2 := Prepare(in, gen.ScaleTest)
	if p2 == nil || p2.G == nil {
		t.Fatal("Prepare after DropPrepared returned nil")
	}
	if p2.G.NumNodes != p.G.NumNodes || p2.G.NumEdges() != p.G.NumEdges() {
		t.Fatalf("rebuilt graph differs: %d/%d nodes, %d/%d edges",
			p2.G.NumNodes, p.G.NumNodes, p2.G.NumEdges(), p.G.NumEdges())
	}
	DropPrepared(in.Name, gen.ScaleTest)
}
