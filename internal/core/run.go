package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"graphstudy/internal/adapt"
	"graphstudy/internal/gen"
	"graphstudy/internal/grb"
	"graphstudy/internal/lagraph"
	"graphstudy/internal/lonestar"
	"graphstudy/internal/trace"
)

// RunSpec describes one measurement: a workload on a system on an input.
type RunSpec struct {
	App     App
	System  System
	Variant Variant
	Input   *gen.Input
	Scale   gen.Scale
	// Threads is the worker count (<= 0 uses the configured default).
	Threads int
	// Timeout bounds the run; zero means unbounded. The study used 2 hours
	// at full scale; the harness defaults to a scaled-down bound.
	Timeout time.Duration
	// Trace, when non-nil, is installed for the duration of the timed
	// region: every kernel, parallel region, and algorithm round records a
	// span into it, and Result.Trace carries the aggregated summary.
	// Installation is global (like perfmodel), so traced runs must not
	// execute concurrently with other runs.
	Trace *trace.Trace
	// Adapt overrides the adaptive variant's decision thresholds; nil uses
	// adapt.DefaultConfig(). The metamorphic equivalence suite injects
	// forced decisions through it. Ignored by every other variant.
	Adapt *adapt.Config
	// Mutation, for the incremental variant, identifies the mutation
	// lineage the input snapshot belongs to and resolves epoch-to-epoch
	// deltas; nil runs from scratch without keeping state. Ignored by every
	// other variant.
	Mutation *MutationView
}

// adaptConfig resolves the spec's adaptive config.
func adaptConfig(spec RunSpec) adapt.Config {
	if spec.Adapt != nil {
		return *spec.Adapt
	}
	return adapt.DefaultConfig()
}

// Result is the outcome of one run.
type Result struct {
	Spec    RunSpec
	Outcome Outcome
	Err     error
	// Elapsed is the timed region only (preprocessing excluded).
	Elapsed time.Duration
	// Value summarizes the answer for cross-system comparison (e.g. the
	// triangle count, component count, distance checksum).
	Value string
	// Check is a numeric digest of the answer; equal answers have equal
	// digests (used by the cross-system consistency tests).
	Check uint64
	// AllocBytes is the heap allocated during the timed region — the
	// harness's stand-in for Table III's max resident set size, and a
	// direct measure of the materialization the study discusses.
	AllocBytes uint64
	// Rounds reports algorithm rounds where meaningful (bfs levels, cc
	// hook/shortcut rounds, ktruss peels, sssp light-relax rounds).
	Rounds int
	// Trace is the per-operator summary of the run when Spec.Trace was set.
	Trace *trace.Summary
}

// Run executes one measurement. Preparation (generation, symmetrization,
// matrix building) happens before the clock starts. It is a thin shim over
// RunCtx for callers that have no context of their own.
func Run(spec RunSpec) Result {
	return RunCtx(context.Background(), spec)
}

// RunCtx executes one measurement under a caller-supplied context. The
// spec's Timeout (when positive) is layered on top as a deadline, so a
// server can propagate per-request deadlines while batch callers keep the
// old Timeout semantics. Cancellation is cooperative: the round loops of
// both APIs observe a stop flag between rounds, and a canceled or expired
// context flips it, producing a TO outcome rather than an abandoned
// goroutine.
func RunCtx(ctx context.Context, spec RunSpec) Result {
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Timeout)
		defer cancel()
	}

	p := Prepare(spec.Input, spec.Scale)

	var stop atomic.Bool
	if ctx.Done() != nil {
		// Synchronous pre-check: an already-expired deadline must stop the
		// run deterministically, not race with the watcher goroutine.
		if ctx.Err() != nil {
			stop.Store(true)
		} else {
			watchDone := make(chan struct{})
			defer close(watchDone)
			//lint:ignore gostmt context-cancellation watcher: one goroutine per run, joined via watchDone on every exit path
			go func() {
				select {
				case <-ctx.Done():
					stop.Store(true)
				case <-watchDone:
				}
			}()
		}
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	if spec.Trace != nil {
		trace.Install(spec.Trace)
	}
	start := time.Now()
	value, check, rounds, err := dispatch(p, spec, &stop)
	elapsed := time.Since(start)
	if spec.Trace != nil {
		trace.Install(nil)
	}
	runtime.ReadMemStats(&ms1)

	res := Result{
		Spec:       spec,
		Elapsed:    elapsed,
		Value:      value,
		Check:      check,
		Rounds:     rounds,
		AllocBytes: ms1.TotalAlloc - ms0.TotalAlloc,
	}
	if spec.Trace != nil {
		res.Trace = spec.Trace.Summary()
	}
	switch {
	case err == lagraph.ErrTimeout || err == lonestar.ErrTimeout:
		res.Outcome = TO
	case err != nil:
		res.Outcome = ERR
		res.Err = err
	default:
		res.Outcome = OK
	}
	return res
}

// grbContext builds the LAGraph-side context for a system.
func grbContext(sys System, threads int, stop *atomic.Bool) (*grb.Context, error) {
	var ctx *grb.Context
	switch sys {
	case SS:
		ctx = grb.NewSuiteSparseContext(threads)
	case GB:
		ctx = grb.NewGaloisBLASContext(threads)
	default:
		return nil, fmt.Errorf("core: system %v has no GraphBLAS context", sys)
	}
	ctx.Stop = stop
	return ctx, nil
}

// dispatch routes to the right algorithm implementation.
func dispatch(p *Prepared, spec RunSpec, stop *atomic.Bool) (value string, check uint64, rounds int, err error) {
	lsOpt := lonestar.Options{Threads: spec.Threads, Stop: stop}
	switch spec.App {
	case BFS:
		if spec.System == LS {
			dist, r, err := lonestar.BFS(p.G, p.Src, lsOpt)
			if err != nil {
				return "", 0, r, err
			}
			return summarizeLevels(dist), checksum32(dist), r, nil
		}
		ctx, err := grbContext(spec.System, spec.Threads, stop)
		if err != nil {
			return "", 0, 0, err
		}
		if spec.Variant == VIncremental {
			levels, r, err := runIncrementalBFS(ctx, p, spec)
			if err != nil {
				return "", 0, r, err
			}
			return summarizeLevels(levels), checksum32(levels), r, nil
		}
		bfs := lagraph.BFS
		switch spec.Variant {
		case VFused:
			bfs = lagraph.FusedBFS
		case VAdaptive:
			cfg := adaptConfig(spec)
			bfs = func(ctx *grb.Context, A *grb.Matrix[bool], src int) (*grb.Vector[int32], int, error) {
				dist, rounds, _, err := lagraph.AdaptiveBFS(ctx, A, src, cfg)
				return dist, rounds, err
			}
		}
		dist, r, err := bfs(ctx, p.ABool, int(p.Src))
		if err != nil {
			return "", 0, r, err
		}
		levels := lagraph.BFSLevels(dist)
		return summarizeLevels(levels), checksum32(levels), r, nil

	case CC:
		switch {
		case spec.System == LS && spec.Variant == VLSSV:
			labels, r, err := lonestar.CCShiloachVishkin(p.Sym, lsOpt)
			if err != nil {
				return "", 0, r, err
			}
			return summarizeComponents(labels), componentCheck(labels), r, nil
		case spec.System == LS:
			labels, err := lonestar.CCAfforest(p.Sym, lsOpt)
			if err != nil {
				return "", 0, 0, err
			}
			return summarizeComponents(labels), componentCheck(labels), 0, nil
		default:
			ctx, err := grbContext(spec.System, spec.Threads, stop)
			if err != nil {
				return "", 0, 0, err
			}
			if spec.Variant == VIncremental {
				labels, r, err := runIncrementalCC(ctx, p, spec)
				if err != nil {
					return "", 0, r, err
				}
				return summarizeComponents(labels), componentCheck(labels), r, nil
			}
			fastsv := lagraph.CCFastSV
			if spec.Variant == VAdaptive {
				cfg := adaptConfig(spec)
				fastsv = func(ctx *grb.Context, A *grb.Matrix[uint32]) (*grb.Vector[uint32], int, error) {
					return lagraph.AdaptiveCC(ctx, A, cfg)
				}
			}
			f, r, err := fastsv(ctx, p.ASymU32)
			if err != nil {
				return "", 0, r, err
			}
			labels := lagraph.Labels(f)
			return summarizeComponents(labels), componentCheck(labels), r, nil
		}

	case KTruss:
		k := p.In.KTrussK()
		if spec.System == LS {
			res, err := lonestar.KTruss(p.Sym, k, lsOpt)
			if err != nil {
				return "", 0, res.Rounds, err
			}
			return fmt.Sprintf("edges=%d", res.Edges), uint64(res.Edges), res.Rounds, nil
		}
		ctx, err := grbContext(spec.System, spec.Threads, stop)
		if err != nil {
			return "", 0, 0, err
		}
		res, err := lagraph.KTruss(ctx, p.ASymInt, k)
		if err != nil {
			return "", 0, res.Rounds, err
		}
		return fmt.Sprintf("edges=%d", res.Edges), uint64(res.Edges), res.Rounds, nil

	case PR:
		if spec.System == LS {
			o := lonestar.DefaultPageRankOptions()
			o.Options = lsOpt
			ranks, err := lonestar.PageRankResidual(p.G, o, spec.Variant == VLSSoA)
			if err != nil {
				return "", 0, 0, err
			}
			return summarizeRanks(ranks), rankCheck(ranks), o.Iterations, nil
		}
		ctx, err := grbContext(spec.System, spec.Threads, stop)
		if err != nil {
			return "", 0, 0, err
		}
		if spec.Variant == VIncremental {
			pr, r, err := runIncrementalPR(ctx, p, spec)
			if err != nil {
				return "", 0, r, err
			}
			ranks := lagraph.Ranks(pr)
			return summarizeRanks(ranks), rankCheck(ranks), r, nil
		}
		opt := lagraph.DefaultPageRankOptions()
		var r *grb.Vector[float64]
		switch spec.Variant {
		case VGBRes:
			r, err = lagraph.PageRankResidual(ctx, p.AFloat, opt)
		case VFused:
			// The fused DAG port of the residual formulation; its digest
			// matches gb-res bit for bit (the fused differential suite).
			r, err = lagraph.FusedPageRank(ctx, p.AFloat, opt)
		case VAdaptive:
			// The adaptive port of the same formulation; digest-compatible
			// with gb-res under the quantized rank check.
			r, err = lagraph.AdaptivePageRank(ctx, p.AFloat, opt, adaptConfig(spec))
		default:
			r, err = lagraph.PageRank(ctx, p.AFloat, opt)
		}
		if err != nil {
			return "", 0, 0, err
		}
		ranks := lagraph.Ranks(r)
		return summarizeRanks(ranks), rankCheck(ranks), opt.Iterations, nil

	case SSSP:
		delta := p.In.Delta()
		if spec.System == LS {
			o := lonestar.DefaultSSSPOptions()
			o.Options = lsOpt
			o.Delta = delta
			o.EdgeTiling = spec.Variant != VLSNoTile
			dist, applied, err := lonestar.SSSP(p.G, p.Src, o)
			if err != nil {
				return "", 0, int(applied), err
			}
			return summarizeDists(dist), checksum64(dist), int(applied), nil
		}
		ctx, err := grbContext(spec.System, spec.Threads, stop)
		if err != nil {
			return "", 0, 0, err
		}
		sssp32, sssp64 := lagraph.SSSP[uint32], lagraph.SSSP[uint64]
		switch spec.Variant {
		case VFused:
			sssp32, sssp64 = lagraph.FusedSSSP[uint32], lagraph.FusedSSSP[uint64]
		case VAdaptive:
			cfg := adaptConfig(spec)
			sssp32 = func(ctx *grb.Context, A *grb.Matrix[uint32], src int, delta uint32) (lagraph.SSSPResult[uint32], error) {
				return lagraph.AdaptiveSSSP(ctx, A, src, delta, cfg)
			}
			sssp64 = func(ctx *grb.Context, A *grb.Matrix[uint64], src int, delta uint64) (lagraph.SSSPResult[uint64], error) {
				return lagraph.AdaptiveSSSP(ctx, A, src, delta, cfg)
			}
		}
		// The study switches to 64-bit distances for eukarya only.
		if p.In.BigDelta {
			res, err := sssp64(ctx, p.AW64, int(p.Src), uint64(delta))
			if err != nil {
				return "", 0, res.Rounds, err
			}
			d := lagraph.Distances(res.Dist)
			return summarizeDists(d), checksum64(d), res.Rounds, nil
		}
		res, err := sssp32(ctx, p.AW32, int(p.Src), delta)
		if err != nil {
			return "", 0, res.Rounds, err
		}
		d := lagraph.Distances(res.Dist)
		return summarizeDists(d), checksum64(d), res.Rounds, nil

	case TC:
		if spec.System == LS {
			count, err := lonestar.TriangleCount(p.SymSorted, lsOpt)
			if err != nil {
				return "", 0, 0, err
			}
			return fmt.Sprintf("triangles=%d", count), uint64(count), 0, nil
		}
		ctx, err := grbContext(spec.System, spec.Threads, stop)
		if err != nil {
			return "", 0, 0, err
		}
		variant := lagraph.TCSandiaDot
		m := p.ASymInt
		switch spec.Variant {
		case VGBSort:
			variant, m = lagraph.TCSorted, p.ASrtInt
		case VGBLL:
			variant, m = lagraph.TCListing, p.ASrtInt
		}
		count, err := lagraph.TriangleCount(ctx, m, variant)
		if err != nil {
			return "", 0, 0, err
		}
		return fmt.Sprintf("triangles=%d", count), uint64(count), 0, nil
	}
	return "", 0, 0, fmt.Errorf("core: unknown app %v", spec.App)
}

// summarizeLevels reports reachable count and max level.
func summarizeLevels(dist []uint32) string {
	reached, maxL := 0, uint32(0)
	for _, d := range dist {
		if d != ^uint32(0) {
			reached++
			if d > maxL {
				maxL = d
			}
		}
	}
	return fmt.Sprintf("reached=%d maxlevel=%d", reached, maxL)
}

func summarizeDists(dist []uint64) string {
	reached := 0
	for _, d := range dist {
		if d != ^uint64(0) {
			reached++
		}
	}
	return fmt.Sprintf("reached=%d", reached)
}

func summarizeComponents(labels []uint32) string {
	seen := map[uint32]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return fmt.Sprintf("components=%d", len(seen))
}

func summarizeRanks(r []float64) string {
	var sum, max float64
	for _, v := range r {
		sum += v
		if v > max {
			max = v
		}
	}
	return fmt.Sprintf("sum=%.6f max=%.6f", sum, max)
}

// checksum32 hashes a level array (FNV-style) so equal answers compare equal.
func checksum32(a []uint32) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range a {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

func checksum64(a []uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range a {
		h ^= v
		h *= 1099511628211
	}
	return h
}

// componentCheck digests a partition canonically (label = min member).
func componentCheck(labels []uint32) uint64 {
	canon := map[uint32]uint32{}
	for i, l := range labels {
		if m, ok := canon[l]; !ok || uint32(i) < m {
			canon[l] = uint32(i)
		}
	}
	out := make([]uint32, len(labels))
	for i, l := range labels {
		out[i] = canon[l]
	}
	return checksum32(out)
}

// rankCheck digests ranks at reduced precision so schedule-dependent float
// rounding does not break cross-system equality. Quantization rounds to
// nearest rather than truncating: analytically exact ranks (0.125 on a
// complete graph) sit precisely on a truncation boundary, and summation
// order decides which side each system lands on.
func rankCheck(r []float64) uint64 {
	out := make([]uint64, len(r))
	for i, v := range r {
		out[i] = uint64(math.Round(v * 1e7))
	}
	return checksum64(out)
}
