package core

import (
	"testing"
	"time"

	"graphstudy/internal/gen"
)

func spec(app App, sys System, v Variant, name string) RunSpec {
	in, err := gen.ByName(name)
	if err != nil {
		panic(err)
	}
	return RunSpec{App: app, System: sys, Variant: v, Input: in, Scale: gen.ScaleTest, Threads: 4}
}

func TestParseHelpers(t *testing.T) {
	if s, err := ParseSystem("gb"); err != nil || s != GB {
		t.Fatalf("ParseSystem: %v %v", s, err)
	}
	if _, err := ParseSystem("xx"); err == nil {
		t.Fatal("bad system accepted")
	}
	if a, err := ParseApp("SSSP"); err != nil || a != SSSP {
		t.Fatalf("ParseApp: %v %v", a, err)
	}
	if _, err := ParseApp("nope"); err == nil {
		t.Fatal("bad app accepted")
	}
	if Label(GB, VDefault) != "gb" || Label(LS, VLSSV) != "ls-sv" {
		t.Fatal("Label wrong")
	}
	if Elapsed(1234*time.Millisecond) != "1.23" {
		t.Fatalf("Elapsed format: %s", Elapsed(1234*time.Millisecond))
	}
}

func TestAllSystemsAgreeOnEveryApp(t *testing.T) {
	// The central integration test: for each workload and graph, the three
	// systems must produce identical answers (digests).
	graphs := []string{"road-USA-W", "rmat22"}
	for _, gname := range graphs {
		for _, app := range Apps() {
			var ref Result
			for i, sys := range []System{SS, GB, LS} {
				r := Run(spec(app, sys, VDefault, gname))
				if r.Outcome != OK {
					t.Fatalf("%s/%v/%v: outcome %v err %v", gname, app, sys, r.Outcome, r.Err)
				}
				if app == PR {
					// LS pagerank is residual-based; only SS and GB share the
					// exact formulation. Cross-check LS via the gb-res variant
					// in TestPRVariantsAgree instead.
					if sys == LS {
						continue
					}
				}
				if i == 0 {
					ref = r
					continue
				}
				if r.Check != ref.Check {
					t.Fatalf("%s/%v: %v answer %q (digest %x) != %v answer %q (digest %x)",
						gname, app, sys, r.Value, r.Check, ref.Spec.System, ref.Value, ref.Check)
				}
			}
		}
	}
}

func TestPRVariantsAgree(t *testing.T) {
	// gb-res implements exactly the computation ls does.
	for _, gname := range []string{"road-USA-W", "rmat22"} {
		gbres := Run(spec(PR, GB, VGBRes, gname))
		ls := Run(spec(PR, LS, VDefault, gname))
		lssoa := Run(spec(PR, LS, VLSSoA, gname))
		for _, r := range []Result{gbres, ls, lssoa} {
			if r.Outcome != OK {
				t.Fatalf("%s: %v", gname, r.Err)
			}
		}
		if gbres.Check != ls.Check || ls.Check != lssoa.Check {
			t.Fatalf("%s: residual pr variants disagree: %q %q %q", gname, gbres.Value, ls.Value, lssoa.Value)
		}
	}
}

func TestCCVariantsAgree(t *testing.T) {
	a := Run(spec(CC, LS, VDefault, "rmat22"))
	sv := Run(spec(CC, LS, VLSSV, "rmat22"))
	gb := Run(spec(CC, GB, VDefault, "rmat22"))
	if a.Check != sv.Check || sv.Check != gb.Check {
		t.Fatalf("cc variants disagree: %q %q %q", a.Value, sv.Value, gb.Value)
	}
}

func TestTCVariantsAgree(t *testing.T) {
	want := Run(spec(TC, LS, VDefault, "rmat22"))
	for _, v := range []Variant{VDefault, VGBSort, VGBLL} {
		r := Run(spec(TC, GB, v, "rmat22"))
		if r.Outcome != OK || r.Check != want.Check {
			t.Fatalf("tc %v: %q vs %q (%v)", v, r.Value, want.Value, r.Err)
		}
	}
}

func TestSSSPVariantsAgree(t *testing.T) {
	tiled := Run(spec(SSSP, LS, VDefault, "road-USA-W"))
	notile := Run(spec(SSSP, LS, VLSNoTile, "road-USA-W"))
	if tiled.Check != notile.Check {
		t.Fatalf("sssp tiling changed the answer: %q vs %q", tiled.Value, notile.Value)
	}
}

func TestEukaryaUses64Bit(t *testing.T) {
	r := Run(spec(SSSP, GB, VDefault, "eukarya"))
	if r.Outcome != OK {
		t.Fatalf("eukarya sssp: %v", r.Err)
	}
	ls := Run(spec(SSSP, LS, VDefault, "eukarya"))
	if ls.Check != r.Check {
		t.Fatalf("eukarya sssp disagrees: %q vs %q", r.Value, ls.Value)
	}
}

func TestTimeoutProducesTO(t *testing.T) {
	s := spec(SSSP, GB, VDefault, "road-USA")
	s.Timeout = time.Nanosecond
	r := Run(s)
	if r.Outcome != TO {
		t.Fatalf("outcome = %v, want TO", r.Outcome)
	}
}

func TestRunReportsAllocations(t *testing.T) {
	r := Run(spec(TC, GB, VDefault, "rmat22"))
	if r.AllocBytes == 0 {
		t.Fatal("TC on GB should allocate (materialization)")
	}
}

func TestMaterializationStory(t *testing.T) {
	// The matrix API materializes L, U', and C for tc; Lonestar keeps a
	// counter. GB must allocate substantially more than LS in the timed
	// region (study section V-A3).
	gb := Run(spec(TC, GB, VDefault, "rmat22"))
	ls := Run(spec(TC, LS, VDefault, "rmat22"))
	if gb.AllocBytes < 4*ls.AllocBytes {
		t.Fatalf("GB alloc %d not clearly above LS alloc %d", gb.AllocBytes, ls.AllocBytes)
	}
}

func TestPreparedCaching(t *testing.T) {
	in, _ := gen.ByName("rmat22")
	p1 := Prepare(in, gen.ScaleTest)
	p2 := Prepare(in, gen.ScaleTest)
	if p1 != p2 {
		t.Fatal("Prepare not cached")
	}
	DropPrepared("rmat22", gen.ScaleTest)
	p3 := Prepare(in, gen.ScaleTest)
	if p3 == p1 {
		t.Fatal("DropPrepared did not evict")
	}
}

func TestRunVerified(t *testing.T) {
	for _, app := range Apps() {
		for _, sys := range []System{GB, LS} {
			s := spec(app, sys, VDefault, "rmat22")
			if _, err := RunVerified(s); err != nil {
				t.Fatalf("%v/%v: %v", app, sys, err)
			}
		}
	}
	if _, ok := ReferenceCheck(spec(PR, LS, VDefault, "rmat22")); ok {
		t.Fatal("LS pagerank should have no digest-exact reference")
	}
}
