package core

import (
	"testing"
	"testing/quick"

	"graphstudy/internal/gen"
	"graphstudy/internal/graph"
	"graphstudy/internal/grb"
	"graphstudy/internal/lagraph"
	"graphstudy/internal/lonestar"
	"graphstudy/internal/verify"
)

// These property tests pit the two APIs against each other and against the
// serial references on *random* graphs, beyond the curated suite: any
// divergence in worklist handling, mask semantics, or semiring corner cases
// on odd topologies (self loops, multi-edges collapsing, disconnected
// shards) surfaces here.

func randomGraph(seed uint64) *graph.Graph {
	n := uint32(20 + seed%40)
	m := int(n) * int(2+seed%6)
	g := gen.Random(n, m, true, 64, seed)
	g.SortAdjacency()
	return g
}

func TestPropertyBFSAcrossSystems(t *testing.T) {
	f := func(seed uint16) bool {
		g := randomGraph(uint64(seed))
		src := g.MaxOutDegreeVertex()
		want := verify.BFSLevels(g, src)

		ls, _, err := lonestar.BFS(g, src, lonestar.Options{Threads: 3})
		if err != nil {
			return false
		}
		A := grb.BoolMatrixFromGraph(g)
		gbv, _, err := lagraph.BFS(grb.NewGaloisBLASContext(3), A, int(src))
		if err != nil {
			return false
		}
		gb := lagraph.BFSLevels(gbv)
		fusedv, _, err := lagraph.BFSFused(grb.NewSerialContext(), A, int(src))
		if err != nil {
			return false
		}
		fused := lagraph.BFSLevels(fusedv)
		for i := range want {
			if ls[i] != want[i] || gb[i] != want[i] || fused[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySSSPAcrossSystems(t *testing.T) {
	f := func(seed uint16, deltaExp uint8) bool {
		g := randomGraph(uint64(seed) + 7777)
		src := g.MaxOutDegreeVertex()
		want := verify.Dijkstra(g, src)
		delta := uint32(1) << (1 + deltaExp%10)

		o := lonestar.DefaultSSSPOptions()
		o.Threads = 3
		o.Delta = delta
		o.TileSize = 4
		ls, _, err := lonestar.SSSP(g, src, o)
		if err != nil {
			return false
		}
		A := grb.WeightMatrixFromGraph(g)
		res, err := lagraph.SSSP(grb.NewGaloisBLASContext(3), A, int(src), delta)
		if err != nil {
			return false
		}
		gb := lagraph.Distances(res.Dist)
		bf, err := lagraph.SSSPBellmanFord(grb.NewSerialContext(), A, int(src))
		if err != nil {
			return false
		}
		bfd := lagraph.Distances(bf.Dist)
		for i := range want {
			if ls[i] != want[i] || gb[i] != want[i] || bfd[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCCAndTCAcrossSystems(t *testing.T) {
	f := func(seed uint16) bool {
		g := randomGraph(uint64(seed) + 31337)
		sym := g.Symmetrize()
		sym.SortAdjacency()

		wantCC := verify.Components(sym)
		aff, err := lonestar.CCAfforest(sym, lonestar.Options{Threads: 3})
		if err != nil || !verify.SamePartition(aff, wantCC) {
			return false
		}
		Au := grb.MatrixFromGraph(sym, func(uint32) uint32 { return 1 })
		fsv, _, err := lagraph.CCFastSV(grb.NewGaloisBLASContext(3), Au)
		if err != nil || !verify.SamePartition(lagraph.Labels(fsv), wantCC) {
			return false
		}

		wantTC := int64(verify.TriangleCount(sym))
		sorted := lonestar.SortByDegree(sym)
		lsTC, err := lonestar.TriangleCount(sorted, lonestar.Options{Threads: 3})
		if err != nil || lsTC != wantTC {
			return false
		}
		Ai := grb.MatrixFromGraph(sym, func(uint32) int64 { return 1 })
		gbTC, err := lagraph.TriangleCount(grb.NewGaloisBLASContext(3), Ai, lagraph.TCSandiaDot)
		return err == nil && gbTC == wantTC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyKCoreMISAcrossSystems(t *testing.T) {
	f := func(seed uint16) bool {
		g := randomGraph(uint64(seed) + 99991)
		sym := g.Symmetrize()
		sym.SortAdjacency()

		wantCore := verify.KCore(sym)
		lsCore, err := lonestar.KCore(sym, lonestar.Options{Threads: 3})
		if err != nil {
			return false
		}
		for i := range wantCore {
			if lsCore[i] != wantCore[i] {
				return false
			}
		}
		Au := grb.MatrixFromGraph(sym, func(uint32) uint32 { return 1 })
		gbCore, _, err := lagraph.KCore(grb.NewGaloisBLASContext(3), Au)
		if err != nil {
			return false
		}
		ok := true
		gbCore.ForEach(func(i int, v uint32) {
			if wantCore[i] != v {
				ok = false
			}
		})
		if !ok {
			return false
		}

		lsSet, _, err := lonestar.MIS(sym, uint64(seed), lonestar.Options{Threads: 3})
		if err != nil || verify.CheckIndependentSet(sym, lsSet) != nil {
			return false
		}
		gbSet, _, err := lagraph.MIS(grb.NewGaloisBLASContext(3), Au, uint64(seed))
		return err == nil && verify.CheckIndependentSet(sym, lagraph.Members(gbSet)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
