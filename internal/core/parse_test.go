package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"graphstudy/internal/gen"
)

func TestParseSystemRoundTrip(t *testing.T) {
	for _, sys := range []System{SS, GB, LS} {
		for _, form := range []string{sys.String(), strings.ToLower(sys.String())} {
			got, err := ParseSystem(form)
			if err != nil || got != sys {
				t.Fatalf("ParseSystem(%q) = %v, %v; want %v", form, got, err, sys)
			}
		}
	}
	for _, bad := range []string{"", "S", "LSX", "galois", "suite"} {
		if got, err := ParseSystem(bad); err == nil {
			t.Fatalf("ParseSystem(%q) = %v, want error", bad, got)
		} else if !strings.Contains(err.Error(), "unknown system") {
			t.Fatalf("ParseSystem(%q) error %q should name the problem", bad, err)
		}
	}
}

func TestParseAppRoundTrip(t *testing.T) {
	for _, app := range Apps() {
		for _, form := range []string{app.String(), strings.ToUpper(app.String())} {
			got, err := ParseApp(form)
			if err != nil || got != app {
				t.Fatalf("ParseApp(%q) = %v, %v; want %v", form, got, err, app)
			}
		}
	}
	for _, bad := range []string{"", "bf", "pagerank", "triangle"} {
		if got, err := ParseApp(bad); err == nil {
			t.Fatalf("ParseApp(%q) = %v, want error", bad, got)
		}
	}
}

func TestLabelAllPairs(t *testing.T) {
	// Default variant: the lowercase system name.
	for _, sys := range []System{SS, GB, LS} {
		if got, want := Label(sys, VDefault), strings.ToLower(sys.String()); got != want {
			t.Fatalf("Label(%v, default) = %q, want %q", sys, got, want)
		}
	}
	// Named variants label as themselves regardless of system. Iterating
	// the registry (not a hand-written slice) means a newly added variant
	// can never silently skip this round-trip.
	for _, v := range Variants() {
		if got := Label(LS, v); got != string(v) {
			t.Fatalf("Label(LS, %q) = %q", v, got)
		}
	}
}

func TestParseVariantRoundTrip(t *testing.T) {
	if got, err := ParseVariant(""); err != nil || got != VDefault {
		t.Fatalf("ParseVariant(\"\") = %v, %v; want default", got, err)
	}
	for _, v := range Variants() {
		got, err := ParseVariant(string(v))
		if err != nil || got != v {
			t.Fatalf("ParseVariant(%q) = %v, %v; want %v", v, got, err, v)
		}
	}
	for _, bad := range []string{"fusedd", "gb", "ls-", "FUSED"} {
		if got, err := ParseVariant(bad); err == nil {
			t.Fatalf("ParseVariant(%q) = %v, want error", bad, got)
		} else if !strings.Contains(err.Error(), "unknown variant") {
			t.Fatalf("ParseVariant(%q) error %q should name the problem", bad, err)
		}
	}
}

func TestValidVariantRegistry(t *testing.T) {
	// The default variant is valid everywhere.
	for _, app := range Apps() {
		for _, sys := range Systems() {
			if !ValidVariant(app, sys, VDefault) {
				t.Fatalf("ValidVariant(%v, %v, default) = false", app, sys)
			}
		}
	}
	cases := []struct {
		app  App
		sys  System
		v    Variant
		want bool
	}{
		{BFS, GB, VFused, true},
		{PR, SS, VFused, true},
		{SSSP, GB, VFused, true},
		{BFS, LS, VFused, false}, // fusion is GraphBLAS-only
		{CC, GB, VFused, false},  // cc has no fused port
		{PR, GB, VGBRes, true},
		{BFS, GB, VGBRes, false},
		{CC, LS, VLSSV, true},
		{CC, GB, VLSSV, false},
		{TC, SS, VGBSort, true},
		{TC, LS, VGBSort, false},
		{BFS, GB, VAdaptive, true},
		{CC, SS, VAdaptive, true},
		{PR, GB, VAdaptive, true},
		{SSSP, SS, VAdaptive, true},
		{BFS, LS, VAdaptive, false}, // adaptation lives in the matrix API
		{TC, GB, VAdaptive, false},  // tc has no round loop to adapt
	}
	for _, c := range cases {
		if got := ValidVariant(c.app, c.sys, c.v); got != c.want {
			t.Errorf("ValidVariant(%v, %v, %q) = %v, want %v", c.app, c.sys, c.v, got, c.want)
		}
	}
}

func TestRunCtxCancellation(t *testing.T) {
	in, err := gen.ByName("road-USA")
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{App: SSSP, System: GB, Input: in, Scale: gen.ScaleTest, Threads: 2}

	// An already-canceled context stops the run before the first round.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r := RunCtx(ctx, spec); r.Outcome != TO {
		t.Fatalf("canceled ctx: outcome %v, want TO", r.Outcome)
	}

	// A context deadline works like the spec timeout.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	if r := RunCtx(ctx2, spec); r.Outcome != TO {
		t.Fatalf("expired ctx: outcome %v, want TO", r.Outcome)
	}

	// Background context and no timeout still completes.
	if r := RunCtx(context.Background(), spec); r.Outcome != OK {
		t.Fatalf("unbounded RunCtx: outcome %v err %v", r.Outcome, r.Err)
	}

	// Run is a shim over RunCtx: same digest.
	if a, b := Run(spec), RunCtx(context.Background(), spec); a.Check != b.Check {
		t.Fatalf("Run and RunCtx disagree: %x vs %x", a.Check, b.Check)
	}
}
