package core

import (
	"fmt"

	"graphstudy/internal/verify"
)

// ReferenceCheck computes the serial reference answer for a spec and returns
// its digest in the same canonical form Run produces, so a measurement can
// be validated by digest equality. The second result is false when no
// digest-exact reference exists for the spec (Lonestar's pagerank uses a
// residual formulation whose 10-iteration transient differs from the power
// iteration, so only SS/GB pagerank is digest-checkable).
func ReferenceCheck(spec RunSpec) (uint64, bool) {
	p := Prepare(spec.Input, spec.Scale)
	switch spec.App {
	case BFS:
		return checksum32(verify.BFSLevels(p.G, p.Src)), true
	case CC:
		return componentCheck(verify.Components(p.Sym)), true
	case KTruss:
		return uint64(verify.KTrussEdges(p.Sym, p.In.KTrussK())), true
	case PR:
		if spec.System == LS {
			return 0, false
		}
		opt := 10
		return rankCheck(verify.PageRank(p.G, 0.85, opt)), true
	case SSSP:
		return checksum64(verify.Dijkstra(p.G, p.Src)), true
	case TC:
		return uint64(verify.TriangleCount(p.Sym)), true
	}
	return 0, false
}

// RunVerified runs the spec and checks the answer against the serial
// reference where one exists, returning an error on mismatch.
func RunVerified(spec RunSpec) (Result, error) {
	res := Run(spec)
	if res.Outcome != OK {
		return res, res.Err
	}
	want, ok := ReferenceCheck(spec)
	if !ok {
		return res, nil
	}
	if res.Check != want {
		return res, fmt.Errorf("core: %v/%v on %s: answer %q (digest %x) does not match the serial reference (digest %x)",
			spec.App, spec.System, spec.Input.Name, res.Value, res.Check, want)
	}
	return res, nil
}
