package core

import (
	"sync"

	"graphstudy/internal/graph"
	"graphstudy/internal/grb"
	"graphstudy/internal/lagraph"
	"graphstudy/internal/trace"
)

// MutationView ties a run to the mutation lineage of its input: the input
// is the Base graph as of Epoch, and Deltas resolves the net edge changes
// between two epochs of that lineage. The store's registry builds these
// (Registry.MutationView); tests build them over in-memory edge lists. A
// nil MutationView on a VIncremental spec runs from scratch and keeps no
// state.
type MutationView struct {
	// Base names the mutating graph; incremental state is keyed by it (plus
	// app, system, and thread count, since cross-system float results only
	// agree quantized, not bitwise).
	Base string
	// Epoch is the delta-log epoch the input snapshot reflects.
	Epoch uint64
	// Deltas returns the net edge additions and deletions that transform
	// the snapshot at `from` into the snapshot at `to`, or ok=false when
	// the range is unresolvable (e.g. compacted away).
	Deltas func(from, to uint64) (adds, dels []graph.Edge, ok bool)
}

// incrKey scopes stored state to one lineage and one execution flavor.
// Threads is part of the key because parallel float reductions are only
// bit-reproducible within a fixed worker count.
type incrKey struct {
	base    string
	app     App
	sys     System
	threads int
}

// incrState is the previous snapshot's answer in replayable form.
type incrState struct {
	epoch  uint64
	n      int
	src    uint32                 // bfs only
	levels []uint32               // bfs
	labels []uint32               // cc
	traj   []*grb.Vector[float64] // pr residual trajectory
}

var (
	incrMu    sync.Mutex
	incrCache = map[incrKey]*incrState{}
)

func specIncrKey(spec RunSpec) incrKey {
	return incrKey{base: spec.Mutation.Base, app: spec.App, sys: spec.System, threads: spec.Threads}
}

// ResetIncremental drops stored incremental state for one base graph, or
// all state when base is empty. The registry calls it on compaction-driven
// invalidation; tests call it for isolation.
func ResetIncremental(base string) {
	incrMu.Lock()
	defer incrMu.Unlock()
	for k := range incrCache {
		if base == "" || k.base == base {
			delete(incrCache, k)
		}
	}
}

// IncrementalStateCount reports how many lineage states are cached
// (introspection for tests and the /v1/stats handler).
func IncrementalStateCount() int {
	incrMu.Lock()
	defer incrMu.Unlock()
	return len(incrCache)
}

// incrTake fetches the stored state for the spec's lineage together with
// the net additions bridging it to the requested epoch. warm=false means
// incremental reuse is unsound here and the caller must run from scratch:
// no mutation view, no stored state, stored state ahead of the request, an
// unresolvable delta range, or deletions in the delta (a deletion can
// invalidate arbitrary parts of a prior answer). The state itself is
// treated as immutable once stored; callers never write through it.
func incrTake(spec RunSpec) (st *incrState, adds []graph.Edge, warm bool) {
	mv := spec.Mutation
	if mv == nil {
		return nil, nil, false
	}
	incrMu.Lock()
	st = incrCache[specIncrKey(spec)]
	incrMu.Unlock()
	if st == nil || st.epoch > mv.Epoch {
		return st, nil, false
	}
	adds, dels, ok := mv.Deltas(st.epoch, mv.Epoch)
	if !ok || len(dels) > 0 {
		return st, nil, false
	}
	return st, adds, true
}

// incrStore publishes the state for the next epoch's run. Last writer wins:
// concurrent runs on the same lineage are allowed, and whichever finishes
// last leaves its (self-consistent) snapshot behind.
func incrStore(spec RunSpec, st *incrState) {
	if spec.Mutation == nil {
		return
	}
	st.epoch = spec.Mutation.Epoch
	incrMu.Lock()
	incrCache[specIncrKey(spec)] = st
	incrMu.Unlock()
}

// incrFallback records that a VIncremental run could not reuse prior state
// and is recomputing from scratch, so the decision is auditable from the
// trace (NNZOut carries the full problem size that had to be redone).
func incrFallback(reason string, n int) {
	sp := trace.Begin(trace.CatDelta, "delta.fallback")
	sp.NNZOut = int64(n)
	_ = reason // named for the call sites; the span op is the audit record
	sp.End()
}

// runIncrementalBFS answers BFS for the spec's snapshot, warm-starting from
// the previous snapshot's levels when the delta is additions-only.
func runIncrementalBFS(ctx *grb.Context, p *Prepared, spec RunSpec) ([]uint32, int, error) {
	n := int(p.G.NumNodes)
	st, adds, warm := incrTake(spec)
	if warm && st.src == p.Src && len(st.levels) == n {
		// The (min, hop) relaxation ignores matrix values, so the prepared
		// weight matrix serves directly — no per-run cast of the pattern.
		levels, r, err := lagraph.IncrementalBFS(ctx, p.AW32, int(p.Src), st.levels, adds)
		if err != nil {
			return nil, r, err
		}
		incrStore(spec, &incrState{n: n, src: p.Src, levels: levels})
		return levels, r, nil
	}
	if spec.Mutation != nil {
		incrFallback("bfs", n)
	}
	dist, r, err := lagraph.BFS(ctx, p.ABool, int(p.Src))
	if err != nil {
		return nil, r, err
	}
	levels := lagraph.BFSLevels(dist)
	incrStore(spec, &incrState{n: n, src: p.Src, levels: levels})
	return levels, r, nil
}

// runIncrementalCC answers connected components for the spec's snapshot.
// Additions only merge components, so the warm path is a union-find over
// the previous labels — work proportional to the delta.
func runIncrementalCC(ctx *grb.Context, p *Prepared, spec RunSpec) ([]uint32, int, error) {
	n := int(p.G.NumNodes)
	st, adds, warm := incrTake(spec)
	if warm && len(st.labels) == n {
		labels := lagraph.IncrementalCC(st.labels, adds)
		incrStore(spec, &incrState{n: n, labels: labels})
		return labels, 0, nil
	}
	if spec.Mutation != nil {
		incrFallback("cc", n)
	}
	f, r, err := lagraph.CCFastSV(ctx, p.ASymU32)
	if err != nil {
		return nil, r, err
	}
	labels := lagraph.Labels(f)
	incrStore(spec, &incrState{n: n, labels: labels})
	return labels, r, nil
}

// runIncrementalPR answers pagerank for the spec's snapshot using the
// delta-residual formulation (gb-res): the warm path replays the stored
// residual trajectory, recomputing only the dirty closure of the mutated
// endpoints, and is bit-identical to PageRankResidual on the new snapshot.
func runIncrementalPR(ctx *grb.Context, p *Prepared, spec RunSpec) (*grb.Vector[float64], int, error) {
	opt := lagraph.DefaultPageRankOptions()
	n := int(p.G.NumNodes)
	st, adds, warm := incrTake(spec)
	if warm && st.n == n && len(st.traj) == opt.Iterations {
		pr, traj, err := lagraph.IncrementalPageRank(ctx, p.AFloat, opt, st.traj, adds)
		if err != nil {
			return nil, opt.Iterations, err
		}
		incrStore(spec, &incrState{n: n, traj: traj})
		return pr, opt.Iterations, nil
	}
	if spec.Mutation != nil {
		incrFallback("pr", n)
	}
	pr, traj, err := lagraph.PageRankResidualTraj(ctx, p.AFloat, opt)
	if err != nil {
		return nil, opt.Iterations, err
	}
	incrStore(spec, &incrState{n: n, traj: traj})
	return pr, opt.Iterations, nil
}
