// Package core orchestrates the study: it runs any (workload, system,
// input, variant) combination through a uniform interface, timing it the way
// the paper does (preprocessing excluded, timeout enforced, repeated runs
// averaged) and collecting the auxiliary measurements each experiment needs
// (allocation footprints for Table III, work/span statistics for Figure 2,
// software performance counters for Tables IV and V).
package core

import (
	"fmt"
	"strings"
	"time"
)

// System identifies one of the three systems under study.
type System int

const (
	// SS is LAGraph on the SuiteSparse-style runtime (static scheduling).
	SS System = iota
	// GB is LAGraph on GaloisBLAS (work-stealing runtime).
	GB
	// LS is Lonestar on the Galois graph API.
	LS
)

func (s System) String() string {
	switch s {
	case SS:
		return "SS"
	case GB:
		return "GB"
	case LS:
		return "LS"
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// Systems lists all runtimes in the paper's column order.
func Systems() []System { return []System{SS, GB, LS} }

// ParseSystem converts a name ("SS", "GB", "LS", case-insensitive).
func ParseSystem(s string) (System, error) {
	switch strings.ToUpper(s) {
	case "SS":
		return SS, nil
	case "GB":
		return GB, nil
	case "LS":
		return LS, nil
	}
	return 0, fmt.Errorf("core: unknown system %q (want SS, GB, or LS)", s)
}

// App identifies one of the six study workloads.
type App int

const (
	BFS App = iota
	CC
	KTruss
	PR
	SSSP
	TC
)

// Apps lists all workloads in the paper's row order.
func Apps() []App { return []App{BFS, CC, KTruss, PR, SSSP, TC} }

func (a App) String() string {
	switch a {
	case BFS:
		return "bfs"
	case CC:
		return "cc"
	case KTruss:
		return "ktruss"
	case PR:
		return "pr"
	case SSSP:
		return "sssp"
	case TC:
		return "tc"
	}
	return fmt.Sprintf("App(%d)", int(a))
}

// ParseApp converts a workload name.
func ParseApp(s string) (App, error) {
	for _, a := range Apps() {
		if a.String() == strings.ToLower(s) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown app %q", s)
}

// Outcome classifies a run, matching Table II's cell annotations.
type Outcome int

const (
	// OK: the run completed and (if checked) verified.
	OK Outcome = iota
	// TO: the run exceeded the timeout.
	TO
	// ERR: the run failed (the analog of the paper's "C" correctness and
	// OOM entries).
	ERR
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case TO:
		return "TO"
	case ERR:
		return "ERR"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Variant names the algorithm variants of the differential analysis
// (Figure 3). The empty variant is the Table II default for each system.
type Variant string

const (
	VDefault  Variant = ""
	VLSSV     Variant = "ls-sv"     // cc: Shiloach-Vishkin in Lonestar
	VLSSoA    Variant = "ls-soa"    // pr: structure-of-arrays Lonestar
	VLSNoTile Variant = "ls-notile" // sssp: Lonestar without edge tiling
	VGBRes    Variant = "gb-res"    // pr: residual formulation in GraphBLAS
	VGBSort   Variant = "gb-sort"   // tc: SandiaDot on the degree-sorted graph
	VGBLL     Variant = "gb-ll"     // tc: triangle listing in GraphBLAS
	VFused    Variant = "fused"     // bfs/pr/sssp: lazy-DAG GraphBLAS with fusion
	VAdaptive Variant = "adaptive"  // bfs/pr/sssp/cc: runtime direction+rep adaptation
	// VIncremental answers for the current snapshot of a mutating graph by
	// reusing the previous snapshot's result plus the edge delta
	// (RunSpec.Mutation). Falls back to from-scratch — with an auditable
	// delta.fallback trace span — whenever reuse is unsound; either way the
	// digest matches the from-scratch run on the same snapshot.
	VIncremental Variant = "incremental" // bfs/cc/pr: delta reuse across snapshots
)

// Variants lists every named variant.
func Variants() []Variant {
	return []Variant{VLSSV, VLSSoA, VLSNoTile, VGBRes, VGBSort, VGBLL, VFused, VAdaptive, VIncremental}
}

// ParseVariant converts a variant name; the empty string is the default.
func ParseVariant(s string) (Variant, error) {
	if s == "" {
		return VDefault, nil
	}
	for _, v := range Variants() {
		if string(v) == s {
			return v, nil
		}
	}
	return VDefault, fmt.Errorf("core: unknown variant %q", s)
}

// ValidVariant reports whether the variant applies to the (app, system)
// pair — the combinations dispatch actually routes. The default variant
// applies everywhere.
func ValidVariant(a App, s System, v Variant) bool {
	switch v {
	case VDefault:
		return true
	case VLSSV:
		return a == CC && s == LS
	case VLSSoA:
		return a == PR && s == LS
	case VLSNoTile:
		return a == SSSP && s == LS
	case VGBRes:
		return a == PR && s != LS
	case VGBSort, VGBLL:
		return a == TC && s != LS
	case VFused:
		return (a == BFS || a == PR || a == SSSP) && s != LS
	case VAdaptive:
		return (a == BFS || a == PR || a == SSSP || a == CC) && s != LS
	case VIncremental:
		return (a == BFS || a == CC || a == PR) && s != LS
	}
	return false
}

// Label renders a (system, variant) pair the way the paper does.
func Label(s System, v Variant) string {
	if v == VDefault {
		return strings.ToLower(s.String())
	}
	return string(v)
}

// Elapsed wraps time.Duration to render like the paper's tables (seconds
// with two decimals).
func Elapsed(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}
