package core

import (
	"sync"

	"graphstudy/internal/gen"
	"graphstudy/internal/graph"
	"graphstudy/internal/grb"
	"graphstudy/internal/lonestar"
)

// Prepared bundles every preprocessed form of one input graph that any
// system might need. Preparation cost is excluded from reported runtimes,
// matching the study ("runtimes do not include graph loading and
// preprocessing"). All fields are read-only after construction.
type Prepared struct {
	In  *gen.Input
	Sc  gen.Scale
	G   *graph.Graph // base directed weighted graph, sorted adjacency, CSC built
	Src uint32       // study source: max out-degree vertex (0 for roads)

	// Undirected forms for cc/tc/ktruss.
	Sym       *graph.Graph // symmetrized, sorted
	SymSorted *graph.Graph // Sym relabeled by decreasing degree, sorted

	// Matrix forms for the LAGraph side.
	ABool   *grb.Matrix[bool]    // pattern of G (bfs)
	AFloat  *grb.Matrix[float64] // 1.0 per edge of G (pr)
	AW32    *grb.Matrix[uint32]  // weights of G (sssp)
	AW64    *grb.Matrix[uint64]  // 64-bit weights (sssp on eukarya)
	ASymU32 *grb.Matrix[uint32]  // pattern of Sym as uint32 (cc FastSV)
	ASymInt *grb.Matrix[int64]   // pattern of Sym as 1s (tc gb, ktruss)
	ASrtInt *grb.Matrix[int64]   // pattern of SymSorted (tc gb-sort/gb-ll)
}

var (
	prepMu    sync.Mutex
	prepCache = map[prepKey]*prepEntry{}
)

type prepKey struct {
	name string
	sc   gen.Scale
}

type prepEntry struct {
	once sync.Once
	p    *Prepared
}

// Prepare returns the cached preprocessed forms of the named input at the
// given scale, building them on first use.
func Prepare(in *gen.Input, sc gen.Scale) *Prepared {
	key := prepKey{in.Name, sc}
	prepMu.Lock()
	e, ok := prepCache[key]
	if !ok {
		e = &prepEntry{}
		prepCache[key] = e
	}
	prepMu.Unlock()
	e.once.Do(func() {
		g := in.Build(sc)
		sym := g.Symmetrize()
		sym.SortAdjacency()
		sym.BuildIn()
		symSorted := lonestar.SortByDegree(sym)

		p := &Prepared{
			In:        in,
			Sc:        sc,
			G:         g,
			Src:       in.Source(g),
			Sym:       sym,
			SymSorted: symSorted,
			ABool:     grb.BoolMatrixFromGraph(g),
			AFloat:    grb.FloatMatrixFromGraph(g),
			AW32:      grb.WeightMatrixFromGraph(g),
			AW64:      grb.MatrixFromGraph(g, func(w uint32) uint64 { return uint64(w) }),
			ASymU32:   grb.MatrixFromGraph(sym, func(uint32) uint32 { return 1 }),
			ASymInt:   grb.MatrixFromGraph(sym, func(uint32) int64 { return 1 }),
			ASrtInt:   grb.MatrixFromGraph(symSorted, func(uint32) int64 { return 1 }),
		}
		// CSC mirrors the pull kernels use; built here so it is part of
		// preprocessing, not of the timed region.
		p.AFloat.EnsureCSC()
		p.ABool.EnsureCSC()
		e.p = p
	})
	return e.p
}

// DropPrepared evicts one prepared input so its matrix forms can be
// garbage-collected. It also drops the gen build memo for the same (name,
// scale): the memo holds the base graph the Prepared forms alias, so
// deleting only the prepCache entry would free nothing. The dataset
// registry's budget eviction and memory-bound sweeps both rely on this.
func DropPrepared(name string, sc gen.Scale) {
	prepMu.Lock()
	delete(prepCache, prepKey{name, sc})
	prepMu.Unlock()
	gen.DropCached(name, sc)
}

// PreparedCount reports how many prepared inputs are resident (tests and
// metrics).
func PreparedCount() int {
	prepMu.Lock()
	defer prepMu.Unlock()
	return len(prepCache)
}
