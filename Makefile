# Build/check targets for the graph analytics study and its serving
# subsystem. `make check` is the gate for concurrency-heavy changes: it
# vets, verifies formatting, runs the full test suite, and race-checks the
# service and core packages.

GO ?= go

.PHONY: build test race check fmt clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages that own concurrency: the serving subsystem
# (queue/dedup/cache/worker pool), the run orchestrator, and the dataset
# store (refcounted registry + LRU eviction).
race:
	$(GO) test -race ./internal/service/... ./internal/core/... ./internal/store/...

check: build
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test ./...
	$(GO) test -race ./internal/service/... ./internal/core/... ./internal/store/...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
