# Build/check targets for the graph analytics study and its serving
# subsystem. `make check` is the gate for concurrency-heavy changes: it
# vets, lints (graphlint: the repo's own determinism/concurrency/tracing
# analyzers), verifies formatting, runs the full test suite, and
# race-checks the service and core packages.

GO ?= go

.PHONY: build test race test-parallel check vet lint lint-stale \
	lint-fixtures fmt fuzz-smoke clean bench-fresh bench-gate bench-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages that own concurrency: the serving subsystem
# (queue/dedup/cache/worker pool), the run orchestrator, the dataset store
# (refcounted registry + LRU eviction), the per-P span recorder, the
# differential harness that drives traced runs from multiple goroutines,
# and the parallel kernel stack (blocked executors, GraphBLAS kernels, and
# the LAGraph-style apps that run on them).
RACE_PKGS = ./internal/service/... ./internal/core/... ./internal/store/... \
	./internal/trace/... ./internal/verify/... ./internal/galois/... \
	./internal/grb/... ./internal/fuse/... ./internal/lagraph/... \
	./internal/adapt/... ./internal/loadgen/...

race:
	$(GO) test -race $(RACE_PKGS)

# Focused gate for the parallel kernel backend: the equivalence, metamorphic,
# alias, and digest-stability suites under the race detector at a fixed
# worker count, plus a does-it-run pass over the SpMV scaling benchmark.
test-parallel:
	$(GO) test ./internal/grb ./internal/verify ./internal/fuse ./internal/adapt -race -grb.workers=4
	$(GO) test ./internal/grb -run '^$$' -bench SpMV -benchtime 1x

# Short fuzzing pass over every untrusted-input decoder. Go allows one fuzz
# target per invocation, so each runs separately; 30s apiece keeps this
# CI-sized while still exercising the mutator beyond the seed corpus.
FUZZTIME ?= 30s

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -run '^$$' -fuzz '^FuzzReadMatrixMarket$$' -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeList$$' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^$$' -fuzz '^FuzzReadGSG2$$' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^$$' -fuzz '^FuzzReadGraph$$' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^$$' -fuzz '^FuzzReadDeltaLog$$' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^$$' -fuzz '^FuzzDagEquivalence$$' -fuzztime $(FUZZTIME) ./internal/fuse/
	$(GO) test -run '^$$' -fuzz '^FuzzAdaptEquivalence$$' -fuzztime $(FUZZTIME) ./internal/adapt/
	$(GO) test -run '^$$' -fuzz '^FuzzIncrementalEquivalence$$' -fuzztime $(FUZZTIME) ./internal/verify/

# The vet gate is pinned to an explicit analyzer list so a toolchain
# change can never silently drop a check this repo relies on (copylocks
# and loopclosure guard the galois closures, atomic the counters).
VET_CHECKS = atomic bools buildtag copylocks errorsas loopclosure lostcancel \
	nilfunc printf shift stdmethods stringintconv structtag tests unmarshal \
	unreachable unusedresult

vet:
	$(GO) vet $(foreach c,$(VET_CHECKS),-$(c)) ./...

# graphlint (cmd/graphlint) enforces the invariants go vet cannot see:
# deterministic map handling in kernels, disjoint writes in galois loop
# bodies, no stray goroutines, lease/arena/span release on every CFG
# path, context threading, semiring operand order, checked errors in
# the persistence layers. Zero findings is the bar; licensed exceptions
# carry //lint:ignore <rule> <reason> in the source. The content-keyed
# cache makes a re-lint of an unchanged tree near-instant; delete the
# file (or set LINT_CACHE=) to force a cold run.
LINT_CACHE ?= .graphlint.cache

lint:
	$(GO) run ./cmd/graphlint -cache "$(LINT_CACHE)" ./...

# Reports //lint:ignore directives that no longer suppress anything —
# run after fixing a finding to retire its suppression.
lint-stale:
	$(GO) run ./cmd/graphlint -stale ./...

# Asserts every analyzer in the suite has a firing golden fixture and
# that all fixtures (firing and clean) still match; CI runs this so a
# new rule cannot land untested.
lint-fixtures:
	$(GO) test ./internal/lint/ -run 'TestGolden|TestFixtureCoverage' -count=1

# Lint fixtures deliberately contain code gofmt and vet would object to;
# they live under testdata/, which the go tool skips, and are excluded
# from the formatting gate here.
check: build vet lint
	@fmtout=$$(gofmt -l . | grep -v 'internal/lint/testdata/' || true); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)

# Perf gate. bench-fresh regenerates a full BENCH snapshot into
# $(BENCH_FRESH): the serving half from a seeded graphbench scenario
# against an in-process graphd, the kernel half from the traced
# `gentables -exp bench` cell set. bench-gate then compares it against the
# committed baseline $(BENCH_BASELINE) like a lint pass — one line per
# violated tolerance, nonzero exit on any finding. Deterministic columns
# (digests, rounds, bytes, request counts) gate exactly; wall-clock
# columns get a 10x + 1s floor so CI noise cannot trip them.
# bench-baseline rewrites the committed baseline — run it (and commit the
# diff) when a change legitimately moves the numbers.
BENCH_BASELINE ?= BENCH_9.json
BENCH_FRESH ?= BENCH_fresh.json
BENCH_SCENARIO ?= smoke

bench-fresh:
	rm -f $(BENCH_FRESH)
	$(GO) run ./cmd/graphbench run -scenario $(BENCH_SCENARIO) -self -json $(BENCH_FRESH)
	$(GO) run ./cmd/gentables -exp bench -scale test -progress=false -bench-json $(BENCH_FRESH) > /dev/null

bench-gate: bench-fresh
	$(GO) run ./cmd/graphbench gate -baseline $(BENCH_BASELINE) -fresh $(BENCH_FRESH)

bench-baseline:
	rm -f $(BENCH_BASELINE)
	$(GO) run ./cmd/graphbench run -scenario $(BENCH_SCENARIO) -self -json $(BENCH_BASELINE)
	$(GO) run ./cmd/gentables -exp bench -scale test -progress=false -bench-json $(BENCH_BASELINE) > /dev/null

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
