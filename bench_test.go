// Package graphstudy_test hosts the testing.B entry points that regenerate
// each table and figure of the study (one benchmark family per exhibit).
// They default to the test-scale inputs so `go test -bench=.` completes
// quickly; set GRAPHSTUDY_SCALE=bench for the full-size reproduction (or use
// cmd/gentables, which also renders the formatted tables).
package graphstudy_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"graphstudy/internal/bench"
	"graphstudy/internal/core"
	"graphstudy/internal/galois"
	"graphstudy/internal/gen"
	"graphstudy/internal/grb"
	"graphstudy/internal/lagraph"
	"graphstudy/internal/lonestar"
	"graphstudy/internal/perfmodel"
	"graphstudy/internal/trace"
)

func benchScale() gen.Scale {
	if os.Getenv("GRAPHSTUDY_SCALE") == "bench" {
		return gen.ScaleBench
	}
	return gen.ScaleTest
}

func benchSpec(app core.App, sys core.System, v core.Variant, graphName string, threads int) core.RunSpec {
	in, err := gen.ByName(graphName)
	if err != nil {
		panic(err)
	}
	return core.RunSpec{
		App: app, System: sys, Variant: v, Input: in,
		Scale: benchScale(), Threads: threads, Timeout: 10 * time.Minute,
	}
}

func runSpec(b *testing.B, spec core.RunSpec) {
	b.Helper()
	core.Prepare(spec.Input, spec.Scale) // exclude preprocessing, like the study
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.Run(spec)
		if r.Outcome != core.OK {
			b.Fatalf("%v/%v/%s: %v (%v)", spec.App, spec.System, spec.Input.Name, r.Outcome, r.Err)
		}
	}
}

// BenchmarkTable1GraphSuite regenerates the input suite (Table I's subject).
func BenchmarkTable1GraphSuite(b *testing.B) {
	for _, in := range gen.Suite() {
		b.Run(in.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := in.Build(benchScale())
				if g.NumEdges() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkTable2 times every (app, system) pair of the runtime grid on each
// input, the cells of Table II.
func BenchmarkTable2(b *testing.B) {
	for _, app := range core.Apps() {
		for _, sys := range []core.System{core.SS, core.GB, core.LS} {
			for _, name := range gen.Names() {
				b.Run(fmt.Sprintf("%s/%s/%s", app, sys, name), func(b *testing.B) {
					runSpec(b, benchSpec(app, sys, core.VDefault, name, 4))
				})
			}
		}
	}
}

// BenchmarkTable3Memory reports allocations per run (Table III's subject:
// the matrix API's materialization shows up as allocated bytes).
func BenchmarkTable3Memory(b *testing.B) {
	for _, sys := range []core.System{core.SS, core.GB, core.LS} {
		for _, app := range []core.App{core.TC, core.KTruss, core.SSSP} {
			b.Run(fmt.Sprintf("%s/%s", app, sys), func(b *testing.B) {
				b.ReportAllocs()
				runSpec(b, benchSpec(app, sys, core.VDefault, "rmat22", 4))
			})
		}
	}
}

// BenchmarkTable4Counters runs the GB-vs-LS counter collection (Tables IV/V
// content) and reports instructions and DRAM accesses as custom metrics.
func BenchmarkTable4Counters(b *testing.B) {
	for _, sys := range []core.System{core.GB, core.LS} {
		for _, app := range core.Apps() {
			b.Run(fmt.Sprintf("%s/%s", app, sys), func(b *testing.B) {
				spec := benchSpec(app, sys, core.VDefault, "rmat22", 1)
				core.Prepare(spec.Input, spec.Scale)
				var last perfmodel.Counters
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					last = perfmodel.Collect(func() {
						if r := core.Run(spec); r.Outcome != core.OK {
							b.Fatal(r.Err)
						}
					})
				}
				b.ReportMetric(float64(last.Instructions), "instrs")
				b.ReportMetric(float64(last.DRAM), "dram-accs")
			})
		}
	}
}

// BenchmarkFigure2Scaling sweeps thread counts for GB and LS and reports the
// modeled critical-path time alongside wall-clock (Figure 2's two series).
func BenchmarkFigure2Scaling(b *testing.B) {
	for _, app := range bench.Figure2Apps() {
		for _, sys := range []core.System{core.GB, core.LS} {
			for _, t := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/t=%d", app, sys, t), func(b *testing.B) {
					spec := benchSpec(app, sys, core.VDefault, "rmat22", t)
					core.Prepare(spec.Input, spec.Scale)
					var modeled int64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						st := galois.CollectStats(func() {
							if r := core.Run(spec); r.Outcome != core.OK {
								b.Fatal(r.Err)
							}
						})
						modeled = st.ModeledTime(4000)
					}
					b.ReportMetric(float64(modeled), "modeled-work")
				})
			}
		}
	}
}

// BenchmarkFigure3PR times the pagerank variant ladder (Figure 3a).
func BenchmarkFigure3PR(b *testing.B) {
	cases := []struct {
		label string
		sys   core.System
		v     core.Variant
	}{
		{"gb", core.GB, core.VDefault},
		{"gb-res", core.GB, core.VGBRes},
		{"ls-soa", core.LS, core.VLSSoA},
		{"ls", core.LS, core.VDefault},
	}
	for _, c := range cases {
		b.Run(c.label, func(b *testing.B) {
			runSpec(b, benchSpec(core.PR, c.sys, c.v, "rmat22", 4))
		})
	}
}

// BenchmarkFigure3TC times the triangle-counting variant ladder (Figure 3b).
func BenchmarkFigure3TC(b *testing.B) {
	cases := []struct {
		label string
		sys   core.System
		v     core.Variant
	}{
		{"gb", core.GB, core.VDefault},
		{"gb-sort", core.GB, core.VGBSort},
		{"gb-ll", core.GB, core.VGBLL},
		{"ls", core.LS, core.VDefault},
	}
	for _, c := range cases {
		b.Run(c.label, func(b *testing.B) {
			runSpec(b, benchSpec(core.TC, c.sys, c.v, "uk07", 4))
		})
	}
}

// BenchmarkFigure3CC times the connected-components variant ladder (3c).
func BenchmarkFigure3CC(b *testing.B) {
	cases := []struct {
		label string
		sys   core.System
		v     core.Variant
	}{
		{"gb", core.GB, core.VDefault},
		{"ls-sv", core.LS, core.VLSSV},
		{"ls", core.LS, core.VDefault},
	}
	for _, c := range cases {
		b.Run(c.label, func(b *testing.B) {
			runSpec(b, benchSpec(core.CC, c.sys, c.v, "road-USA", 4))
		})
	}
}

// BenchmarkExtensionBC times the betweenness-centrality extension (not a
// paper exhibit; the workload the paper's introduction opens with) in both
// APIs, from four sources like LAGraph's batch variant.
func BenchmarkExtensionBC(b *testing.B) {
	in, err := gen.ByName("rmat22")
	if err != nil {
		b.Fatal(err)
	}
	p := core.Prepare(in, benchScale())
	sources := []uint32{0, p.Src, 1, 2}
	b.Run("gb", func(b *testing.B) {
		AT := p.ABool.Transpose()
		ctx := grb.NewGaloisBLASContext(4)
		srcs := make([]int, len(sources))
		for i, s := range sources {
			srcs[i] = int(s)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lagraph.BC(ctx, p.ABool, AT, srcs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ls", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lonestar.BC(p.G, sources, lonestar.Options{Threads: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure3SSSP times the sssp variant ladder (Figure 3d).
func BenchmarkFigure3SSSP(b *testing.B) {
	cases := []struct {
		label string
		sys   core.System
		v     core.Variant
	}{
		{"gb", core.GB, core.VDefault},
		{"ls-notile", core.LS, core.VLSNoTile},
		{"ls", core.LS, core.VDefault},
	}
	for _, c := range cases {
		b.Run(c.label, func(b *testing.B) {
			runSpec(b, benchSpec(core.SSSP, c.sys, c.v, "road-USA", 4))
		})
	}
}

// TestTraceOverhead is the tentpole's cost guard: with no trace installed,
// instrumented code pays one atomic load per span. The test measures that
// per-call cost directly, scales it by the number of spans a traced
// PageRank run actually records, and requires the product to stay under 2%
// of the untraced run's wall time. Measuring the disabled path per-call
// (instead of diffing two noisy end-to-end runs) keeps the bound
// deterministic.
func TestTraceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	trace.Install(nil)

	// Per-call cost of a disabled Begin/End pair.
	const calls = 1 << 20
	t0 := time.Now()
	for i := 0; i < calls; i++ {
		sp := trace.Begin(trace.CatKernel, "overhead-probe")
		sp.End()
	}
	perCall := time.Since(t0) / calls

	// How many spans a traced run of the same spec records.
	spec := benchSpec(core.PR, core.SS, core.VDefault, "rmat22", 4)
	spec.Trace = trace.New()
	traced := core.Run(spec)
	if traced.Outcome != core.OK {
		t.Fatalf("traced pr run: %v", traced.Err)
	}
	events := traced.Trace.Events

	// Untraced wall time: best of several runs, so scheduler noise only
	// makes the bound stricter.
	spec.Trace = nil
	wall := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		r := core.Run(spec)
		if r.Outcome != core.OK {
			t.Fatalf("untraced pr run: %v", r.Err)
		}
		if r.Elapsed < wall {
			wall = r.Elapsed
		}
	}

	overhead := perCall * time.Duration(events)
	limit := wall / 50 // 2%
	t.Logf("disabled span cost %v/call x %d events = %v total; untraced wall %v (limit %v)",
		perCall, events, overhead, wall, limit)
	if overhead > limit {
		t.Errorf("disabled-trace overhead %v exceeds 2%% of wall time %v", overhead, wall)
	}
}
