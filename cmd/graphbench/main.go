// Command graphbench drives graphd with deterministic seeded load and
// gates performance regressions against a committed BENCH_*.json
// baseline.
//
// Usage:
//
//	graphbench run -scenario smoke -self -json BENCH_fresh.json
//	graphbench run -scenario steady -url http://127.0.0.1:8080 -record session.jsonl
//	graphbench replay -session session.jsonl -self -pace 2
//	graphbench plan -scenario smoke -o session.jsonl
//	graphbench gate -baseline BENCH_6.json -fresh BENCH_fresh.json
//	graphbench scenarios
//
// `run` expands a scenario (a preset name or a JSON file) into its
// seeded schedule and executes it; `replay` reissues a recorded or
// planned JSONL session with original, scaled, or no pacing; `plan`
// writes the schedule without executing it (byte-identical per seed);
// `gate` compares two BENCH_*.json files like a lint pass — one line per
// violated tolerance, exit 1 on any finding. -self boots an in-process
// graphd so CI needs no separate server process; -json merges the
// serving-path numbers into a BENCH_*.json next to the kernel rows from
// `gentables -exp bench`.
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"graphstudy/internal/bench"
	"graphstudy/internal/loadgen"
	"graphstudy/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "plan":
		cmdPlan(os.Args[2:])
	case "gate":
		cmdGate(os.Args[2:])
	case "scenarios":
		cmdScenarios()
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "graphbench: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `graphbench <subcommand>:

  run        expand a scenario into its seeded schedule and execute it
  replay     reissue a recorded/planned JSONL session
  plan       write a scenario's schedule as JSONL without executing
  gate       compare a fresh BENCH_*.json against a baseline (exit 1 on findings)
  scenarios  list built-in scenario presets

Run 'graphbench <subcommand> -h' for flags.
`)
}

// serverFlags are the flags shared by run and replay: where the traffic
// goes, and the in-process graphd's shape when -self is set.
type serverFlags struct {
	url     *string
	self    *bool
	workers *int
	queue   *int
	cacheSz *int
}

func addServerFlags(fs *flag.FlagSet) *serverFlags {
	return &serverFlags{
		url:     fs.String("url", "", "graphd base URL, e.g. http://127.0.0.1:8080"),
		self:    fs.Bool("self", false, "boot an in-process graphd instead of targeting -url"),
		workers: fs.Int("workers", 2, "-self: worker pool size"),
		queue:   fs.Int("queue", 64, "-self: admission queue depth"),
		cacheSz: fs.Int("cache", 128, "-self: result cache entries"),
	}
}

// target resolves the flags to a base URL, booting an in-process graphd
// when -self is set. The returned cleanup stops that server.
func (sf *serverFlags) target() (string, func(), error) {
	if *sf.self == (*sf.url != "") {
		return "", nil, fmt.Errorf("graphbench: need exactly one of -url or -self")
	}
	if !*sf.self {
		return *sf.url, func() {}, nil
	}
	srv := service.New(service.Config{
		Workers:        *sf.workers,
		QueueDepth:     *sf.queue,
		CacheSize:      *sf.cacheSz,
		DefaultThreads: 4,
		DefaultTimeout: 5 * time.Minute,
		MaxTimeout:     time.Hour,
	})
	ts := httptest.NewServer(srv.Handler())
	fmt.Fprintf(os.Stderr, "graphbench: in-process graphd on %s (%d workers, queue %d, cache %d)\n",
		ts.URL, *sf.workers, *sf.queue, *sf.cacheSz)
	return ts.URL, func() { ts.Close(); srv.Close() }, nil
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("graphbench run", flag.ExitOnError)
	var (
		scenario = fs.String("scenario", "smoke", "preset name or scenario JSON file")
		seed     = fs.Uint64("seed", 0, "override the scenario's seed (0 = keep)")
		record   = fs.String("record", "", "write the planned schedule as JSONL to this file")
		jsonOut  = fs.String("json", "", "merge the serving report into this BENCH_*.json file")
		sf       = addServerFlags(fs)
	)
	_ = fs.Parse(args)

	sc, err := loadgen.LoadScenario(*scenario)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	entries, err := loadgen.Plan(sc)
	if err != nil {
		fatal(err)
	}
	if *record != "" {
		if err := writeSessionFile(*record, entries); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "graphbench: planned schedule (%d entries) written to %s\n", len(entries), *record)
	}

	base, cleanup, err := sf.target()
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	rep, err := loadgen.Execute(entries, loadgen.Options{
		BaseURL: base, Mode: sc.Mode, Concurrency: sc.Concurrency,
	})
	if err != nil {
		fatal(err)
	}
	rep.Scenario, rep.Seed, rep.Mode = sc.Name, sc.Seed, sc.Mode
	if err := rep.AttachServerMetrics(base, nil); err != nil {
		fmt.Fprintln(os.Stderr, "graphbench: warning:", err)
	}
	if sc.SLO != nil {
		rep.Violations = sc.SLO.Check(rep)
	}
	finish(rep, *jsonOut)
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("graphbench replay", flag.ExitOnError)
	var (
		session = fs.String("session", "", "JSONL session file (recorded by graphd -record or written by plan)")
		pace    = fs.Float64("pace", 1, "replay speed multiplier: 2 = twice as fast, 0 = no pacing")
		mode    = fs.String("mode", "open", "issuance mode: open honors offsets, closed uses a worker pool")
		conc    = fs.Int("concurrency", 4, "worker count (closed) / in-flight basis (open)")
		jsonOut = fs.String("json", "", "merge the serving report into this BENCH_*.json file")
		sf      = addServerFlags(fs)
	)
	_ = fs.Parse(args)

	if *session == "" {
		fatal(fmt.Errorf("graphbench replay: -session is required"))
	}
	f, err := os.Open(*session)
	if err != nil {
		fatal(err)
	}
	entries, err := loadgen.ReadSession(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("graphbench replay: %s holds no entries", *session))
	}
	entries = loadgen.ScaleOffsets(entries, *pace)

	base, cleanup, err := sf.target()
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	rep, err := loadgen.Execute(entries, loadgen.Options{
		BaseURL: base, Mode: *mode, Concurrency: *conc,
	})
	if err != nil {
		fatal(err)
	}
	rep.Scenario, rep.Mode = "replay:"+*session, *mode
	if err := rep.AttachServerMetrics(base, nil); err != nil {
		fmt.Fprintln(os.Stderr, "graphbench: warning:", err)
	}
	finish(rep, *jsonOut)
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("graphbench plan", flag.ExitOnError)
	var (
		scenario = fs.String("scenario", "smoke", "preset name or scenario JSON file")
		seed     = fs.Uint64("seed", 0, "override the scenario's seed (0 = keep)")
		out      = fs.String("o", "", "output file (default stdout)")
	)
	_ = fs.Parse(args)

	sc, err := loadgen.LoadScenario(*scenario)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	entries, err := loadgen.Plan(sc)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		if err := loadgen.WriteSession(os.Stdout, entries); err != nil {
			fatal(err)
		}
		return
	}
	if err := writeSessionFile(*out, entries); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "graphbench: %d entries written to %s\n", len(entries), *out)
}

func cmdGate(args []string) {
	fs := flag.NewFlagSet("graphbench gate", flag.ExitOnError)
	tol := bench.DefaultTolerances()
	var (
		baseline = fs.String("baseline", "", "committed BENCH_*.json baseline")
		fresh    = fs.String("fresh", "", "freshly generated BENCH_*.json")
	)
	fs.Float64Var(&tol.TimeFactor, "time-factor", tol.TimeFactor, "latency/time growth factor bound")
	fs.Float64Var(&tol.TimeFloorMs, "time-floor-ms", tol.TimeFloorMs, "absolute slack added to every time bound")
	fs.Float64Var(&tol.BytesFactor, "bytes-factor", tol.BytesFactor, "bytes-materialized growth bound")
	fs.Float64Var(&tol.MaxErrorRate, "max-error-rate", tol.MaxErrorRate, "allowed serving error fraction")
	_ = fs.Parse(args)

	if *baseline == "" || *fresh == "" {
		fatal(fmt.Errorf("graphbench gate: -baseline and -fresh are both required"))
	}
	b, err := bench.ReadBenchFile(*baseline)
	if err != nil {
		fatal(err)
	}
	n, err := bench.ReadBenchFile(*fresh)
	if err != nil {
		fatal(err)
	}
	findings := bench.Compare(b, n, tol)
	for _, f := range findings {
		fmt.Printf("%s: %s\n", *fresh, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "graphbench gate: %d finding(s) against %s\n", len(findings), *baseline)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "graphbench gate: pass (%s within tolerances of %s)\n", *fresh, *baseline)
}

func cmdScenarios() {
	presets := loadgen.Presets()
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sc := presets[name]
		pacing := fmt.Sprintf("closed, %d workers", sc.Concurrency)
		if sc.Mode == "open" {
			pacing = fmt.Sprintf("open, %.0f req/s", sc.RatePerSec)
		}
		fmt.Printf("%-8s %4d requests, seed %d, %s, %d mix entries\n",
			name, sc.Requests, sc.Seed, pacing, len(sc.Mix))
	}
}

// finish renders the report, optionally merges it into a BENCH file, and
// exits 1 on SLO violations (after writing, so the artifact survives for
// inspection).
func finish(rep *loadgen.Report, jsonOut string) {
	if err := rep.Table().Render(os.Stdout); err != nil {
		fatal(err)
	}
	if jsonOut != "" {
		if err := bench.MergeBenchFile(jsonOut, func(r *bench.BenchReport) {
			r.Seed = rep.Seed
			r.Scenario = rep.Scenario
			r.Serving = servingBench(rep)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "graphbench: serving report merged into %s\n", jsonOut)
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "graphbench: %d SLO violation(s)\n", len(rep.Violations))
		os.Exit(1)
	}
}

// servingBench converts a loadgen report into the BENCH_*.json serving
// section. The conversion lives here so internal/bench never imports
// internal/loadgen.
func servingBench(rep *loadgen.Report) *bench.ServingBench {
	return &bench.ServingBench{
		Requests:      rep.Requests,
		OK:            rep.OK,
		Timeouts:      rep.Timeouts,
		Errors:        rep.Errors,
		TooMany:       rep.TooMany,
		CacheHits:     rep.CacheHits,
		ThroughputRPS: rep.ThroughputRPS,
		LatP50Ms:      rep.LatP50Ms,
		LatP99Ms:      rep.LatP99Ms,
		ServerP99Ms:   rep.ServerP99Ms,
		QueueRejects:  rep.Server["queue_rejects"],
		DedupHits:     rep.Server["dedup_hits"],
		RunsTotal:     rep.Server["runs_total"],
	}
}

func writeSessionFile(path string, entries []loadgen.Entry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = loadgen.WriteSession(f, entries)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphbench:", err)
	os.Exit(1)
}
