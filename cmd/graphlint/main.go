// graphlint runs the repo's domain-specific static analyses over the
// module: the determinism, concurrency, tracing, and error-hygiene
// rules described in internal/lint. It loads and type-checks packages
// with only the standard library (no go/packages, no external
// analyzers), prints findings as `file:line:col: [rule] message`, and
// exits nonzero if any finding survives //lint:ignore suppression.
//
// Usage:
//
//	graphlint [-rules rule1,rule2] [-format text|json|sarif] [-cache file] [-stale] [-list] [packages]
//
// Package patterns are module-relative: `./...` (the default) lints
// every package, `./internal/grb` one package, `./internal/...` a
// subtree. `make lint` runs `graphlint ./...` and is part of
// `make check` and CI.
//
// -format json emits a flat JSON array; -format sarif emits SARIF
// 2.1.0 for CI code-scanning viewers. -cache <file> keeps a
// content-keyed diagnostic cache so an unchanged tree re-lints without
// re-type-checking anything. -stale runs the full suite and
// additionally reports //lint:ignore directives that suppress nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphstudy/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	cachePath := flag.String("cache", "", "content-keyed diagnostic cache file (empty: no caching)")
	stale := flag.Bool("stale", false, "also report //lint:ignore directives that suppress nothing (full suite only)")
	flag.Parse()

	if *list {
		for _, a := range lint.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "graphlint: unknown format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	analyzers := lint.Suite()
	if *rules != "" {
		if *stale {
			fmt.Fprintln(os.Stderr, "graphlint: -stale needs the full suite; drop -rules")
			os.Exit(2)
		}
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "graphlint: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modRoot, err := lint.FindModRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := resolve(loader, patterns)
	if err != nil {
		fatal(err)
	}

	var diags []lint.Diagnostic
	switch {
	case *stale:
		// Stale detection needs directive usage tracking across a live
		// run; it bypasses the cache by construction.
		var pkgs []*lint.Package
		for _, path := range paths {
			pkg, err := loader.Load(path)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
		diags = lint.RunStale(pkgs)
		lint.Relativize(diags, modRoot)
	default:
		var cache *lint.Cache
		if *cachePath != "" {
			cache = lint.OpenCache(*cachePath)
		}
		diags, err = lint.LintWithCache(loader, paths, analyzers, cache)
		if err != nil {
			fatal(err)
		}
		if cache != nil {
			if err := cache.Save(); err != nil {
				fmt.Fprintf(os.Stderr, "graphlint: saving cache: %v\n", err)
			}
		}
	}

	switch *format {
	case "json":
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
	case "sarif":
		if err := lint.WriteSARIF(os.Stdout, diags, analyzers); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// resolve expands module-relative package patterns to import paths.
func resolve(l *lint.Loader, patterns []string) ([]string, error) {
	all, err := l.PackagePaths()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
		switch {
		case pat == "..." || pat == ".":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := l.ModPath + "/" + strings.TrimSuffix(pat, "/...")
			matched := false
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("no packages match %s", pat)
			}
		default:
			p := l.ModPath + "/" + pat
			known := false
			for _, q := range all {
				if q == p {
					known = true
					break
				}
			}
			if !known {
				return nil, fmt.Errorf("no package matches %s", pat)
			}
			add(p)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "graphlint: %v\n", err)
	os.Exit(2)
}
