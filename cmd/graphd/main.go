// Command graphd serves the study's (workload, system, input) measurements
// over HTTP: the batch harness behind core.Run becomes a long-lived service
// with a bounded admission queue, a fixed worker pool, request
// deduplication, and an LRU result cache.
//
// Usage:
//
//	graphd -addr :8080 -workers 4 -queue 64 -cache 128
//	graphd -data ./datasets -mem-budget 512MB   # persistent, budgeted datasets
//	graphd -trace-dir ./traces                  # profiling mode: per-run Chrome traces
//	graphd -record session.jsonl                # capture /v1/run traffic for graphbench replay
//
//	curl -d '{"app":"bfs","system":"ls","graph":"rmat22","scale":"test"}' localhost:8080/v1/run
//	curl -d '{"app":"tc","system":"gb","graph":"rmat22","async":true}' localhost:8080/v1/run
//	curl localhost:8080/v1/jobs/job-2
//	curl localhost:8080/v1/jobs/job-2/trace > trace.json   # load in chrome://tracing
//	curl localhost:8080/v1/graphs
//	curl localhost:8080/v1/datasets
//	curl localhost:8080/metrics
//
// With -data, graph names resolve through the dataset store as well as the
// generated suite: anything imported with `graphpack import` is servable,
// generated graphs persist to the store on first use, and -mem-budget
// bounds resident graph bytes with LRU eviction (watch the store_* fields
// of /metrics).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphstudy/internal/gen"
	"graphstudy/internal/loadgen"
	"graphstudy/internal/service"
	"graphstudy/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 2, "worker pool size (concurrent runs)")
		queue   = flag.Int("queue", 64, "admission queue depth (excess requests get 429)")
		cacheSz = flag.Int("cache", 128, "result cache entries (-1 disables)")
		threads = flag.Int("threads", 4, "default per-run worker threads")
		timeout = flag.Duration("timeout", 5*time.Minute, "default per-run deadline")
		maxTO   = flag.Duration("max-timeout", time.Hour, "cap on client-requested deadlines")
		list    = flag.Bool("list", false, "print the graph catalog and exit")
		dataDir = flag.String("data", "", "dataset store directory (persists graphs, serves imported datasets)")
		budget  = flag.String("mem-budget", "", "resident graph byte budget, e.g. 512MB (empty or 0 = unlimited)")
		trDir   = flag.String("trace-dir", "", "profiling mode: record a Chrome trace per run into this directory (serializes executions)")
		recPath = flag.String("record", "", "append incoming /v1/run requests as a JSONL session log (replay with `graphbench replay`)")
	)
	flag.Parse()

	if *list {
		for _, e := range gen.Catalog() {
			fmt.Printf("%-12s %s\n", e.Name, e.Description)
		}
		return
	}

	var reg *store.Registry
	if *dataDir != "" || *budget != "" {
		budgetBytes, err := store.ParseBytes(*budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphd:", err)
			os.Exit(2)
		}
		var st *store.Store
		if *dataDir != "" {
			if st, err = store.Open(*dataDir); err != nil {
				fmt.Fprintln(os.Stderr, "graphd:", err)
				os.Exit(1)
			}
		}
		reg = store.NewRegistry(store.RegistryConfig{Store: st, Budget: budgetBytes})
		fmt.Fprintf(os.Stderr, "graphd: dataset store %q, budget %s\n",
			*dataDir, store.FormatBytes(budgetBytes))
	}

	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSz,
		DefaultThreads: *threads,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
		Registry:       reg,
		TraceDir:       *trDir,
	})
	if *trDir != "" {
		fmt.Fprintf(os.Stderr, "graphd: profiling mode, traces in %s (runs serialized); fetch via /v1/jobs/{id}/trace\n", *trDir)
	}

	handler := srv.Handler()
	if *recPath != "" {
		f, err := os.OpenFile(*recPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphd:", err)
			os.Exit(1)
		}
		defer f.Close()
		rec := loadgen.NewRecorder(f)
		handler = rec.Middleware(handler)
		defer func() {
			fmt.Fprintf(os.Stderr, "graphd: %d request(s) recorded to %s\n", rec.Count(), *recPath)
		}()
		fmt.Fprintf(os.Stderr, "graphd: recording /v1/run sessions to %s\n", *recPath)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	done := make(chan struct{})
	//lint:ignore gostmt process-lifetime signal listener: joined via done before main returns, nothing to pool
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "graphd: shutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx) // best-effort graceful drain; Close follows
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "graphd: serving on %s (%d workers, queue %d, cache %d)\n",
		*addr, *workers, *queue, *cacheSz)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "graphd:", err)
		os.Exit(1)
	}
	<-done
}
