// Command gentables regenerates the study's tables and figures.
//
// Usage:
//
//	gentables -exp table1,table2,table3,table4,table5,figure2,figure3,threads \
//	          -scale bench -threads 4 -timeout 60s -reps 1 [-csv dir] [-full]
//
// Every experiment prints an aligned text table to stdout; -csv also writes
// one CSV per experiment into the given directory.
//
// The extra experiment `bench` runs the fixed perf-gate cell set and, with
// -bench-json, merges the kernel rows into a BENCH_*.json snapshot (see
// cmd/graphbench for the serving half and `make bench-gate` for the gate).
// The extra experiment `fusion` compares eager grb, fused grb, and Lonestar
// on the ported workloads, reporting the bytes the fusion planner elided.
// The extra experiment `adapt` compares static push, static pull, and the
// adaptive decision engine on the round-based workloads (plus an adaptive
// thread sweep), with the engine's decision mix read from the trace.
// The extra experiment `incr` compares from-scratch, cold, and warm
// incremental runs over a deterministic streaming-mutation lineage, with
// the warm path's touched set read from the CatDelta spans.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graphstudy/internal/bench"
	"graphstudy/internal/gen"
	"graphstudy/internal/store"
	"graphstudy/internal/trace"
)

func main() {
	var (
		expFlag   = flag.String("exp", "table1,table2,table3,table4,table5,figure2,figure3", "comma-separated experiments to run")
		scale     = flag.String("scale", "bench", "input scale: test or bench")
		threads   = flag.Int("threads", 4, "worker threads for timed runs")
		timeout   = flag.Duration("timeout", 120*time.Second, "per-run timeout (study analog: 2h)")
		reps      = flag.Int("reps", 1, "repetitions averaged per timing (study: 3)")
		csvDir    = flag.String("csv", "", "also write CSV files into this directory")
		full      = flag.Bool("full", false, "figure 2: all four largest graphs and threads up to 56")
		progress  = flag.Bool("progress", true, "print progress to stderr")
		storeDir  = flag.String("store", "", "dataset store directory: inputs persist across runs instead of regenerating")
		trDir     = flag.String("trace", "", "record an operator-level Chrome trace of the whole invocation into this directory")
		benchJSON = flag.String("bench-json", "", "with -exp bench: merge kernel rows into this BENCH_*.json file")
	)
	flag.Parse()

	var tr *trace.Trace
	if *trDir != "" {
		// One trace spans every experiment; ring capacity is raised since a
		// full grid records far more events than a single run.
		tr = trace.NewWithCapacity(1 << 16)
		trace.Install(tr)
	}

	cfg := bench.DefaultConfig()
	cfg.Threads = *threads
	cfg.Timeout = *timeout
	cfg.Reps = *reps
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		cfg.Registry = store.NewRegistry(store.RegistryConfig{Store: st})
	}
	switch *scale {
	case "test":
		cfg.Scale = gen.ScaleTest
	case "bench":
		cfg.Scale = gen.ScaleBench
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	note := func(msg string) {
		if *progress {
			fmt.Fprintf(os.Stderr, "\r%-60s", msg)
		}
	}
	emit := func(name string, t *bench.Table) {
		if *progress {
			fmt.Fprintf(os.Stderr, "\r%-60s\r", "")
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				fatal(err)
			}
			if err := t.RenderCSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	wanted := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(e)] = true
	}

	var grid *bench.GridResult
	ensureGrid := func() *bench.GridResult {
		if grid == nil {
			grid = bench.RunGrid(cfg, note)
		}
		return grid
	}

	if wanted["table1"] {
		emit("table1", bench.Table1(cfg))
	}
	if wanted["table2"] {
		emit("table2", bench.Table2(ensureGrid()))
	}
	if wanted["table3"] {
		emit("table3", bench.Table3(ensureGrid()))
	}
	if wanted["table4"] {
		t, err := bench.Table4(counterConfig(cfg))
		if err != nil {
			fatal(err)
		}
		emit("table4", t)
	}
	if wanted["table5"] {
		t, err := bench.Table5(counterConfig(cfg))
		if err != nil {
			fatal(err)
		}
		emit("table5", t)
	}
	if wanted["figure2"] {
		graphs := bench.Figure2Graphs(!*full)
		maxT := 16
		if *full {
			maxT = 56
		}
		threadsList := bench.Figure2Threads(maxT)
		points := bench.Figure2(cfg, graphs, threadsList, note)
		emit("figure2", bench.Figure2Table(points, threadsList))
	}
	if wanted["threads"] {
		threadsList := bench.Figure2Threads(8)
		points, err := bench.ThreadsScaling(cfg, "", threadsList, note)
		if err != nil {
			fatal(err)
		}
		emit("threads", bench.ThreadsTable("", points))
	}
	if wanted["figure3"] {
		for _, vs := range bench.Figure3Specs() {
			t := bench.Figure3(cfg, vs, note)
			emit("figure3-"+t.Rows[len(t.Rows)-1][0]+"-"+fmt.Sprint(vs.App), t)
		}
	}
	if wanted["fusion"] {
		t, err := bench.FusionTable(cfg, note)
		if err != nil {
			fatal(err)
		}
		emit("fusion", t)
	}
	if wanted["adapt"] {
		t, err := bench.AdaptTable(cfg, note)
		if err != nil {
			fatal(err)
		}
		emit("adapt", t)
		points, err := bench.AdaptThreadsScaling(cfg, bench.Figure2Threads(8), note)
		if err != nil {
			fatal(err)
		}
		emit("adapt-threads", bench.AdaptThreadsTable(points))
	}
	if wanted["incr"] {
		t, err := bench.IncrTable(cfg, note)
		if err != nil {
			fatal(err)
		}
		emit("incr", t)
	}
	if wanted["bench"] {
		ks, err := bench.BenchKernels(cfg, note)
		if err != nil {
			fatal(err)
		}
		emit("bench", bench.BenchTable(ks))
		if *benchJSON != "" {
			if err := bench.MergeBenchFile(*benchJSON, func(r *bench.BenchReport) {
				r.Kernels = ks
			}); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "gentables: kernel bench rows merged into %s\n", *benchJSON)
		}
	}

	if tr != nil {
		trace.Install(nil)
		if err := os.MkdirAll(*trDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*trDir, "gentables.json")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		err = tr.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gentables: trace written to %s (load in chrome://tracing)\n", path)
		if err := tr.Summary().WriteText(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// counterConfig scales the traced runs down: the cache simulator slows
// execution by orders of magnitude, matching how the study collected
// counters in separate profiled runs.
func counterConfig(cfg bench.Config) bench.Config {
	out := cfg
	out.Scale = gen.ScaleTest
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gentables:", err)
	os.Exit(1)
}
