// Command graphstudy runs one (workload, system, input) measurement, the
// equivalent of invoking one Lonestar binary or one LAGraph demo in the
// original study.
//
// Usage:
//
//	graphstudy -app sssp -sys ls -graph road-USA -threads 4
//	graphstudy -app tc -sys gb -variant gb-ll -graph uk07 -scale bench
//	graphstudy -app pr -sys gb -counters        # software perf counters
//	graphstudy -app pr -sys ss -trace pr.json   # operator-level Chrome trace
//	graphstudy -store ./datasets -graph web-BerkStan -app bfs -sys ls
//
// With -store, the graph name resolves through the dataset store: imported
// datasets (graphpack import) run like suite graphs, and generated suite
// inputs persist into the store so repeated invocations skip regeneration.
package main

import (
	"flag"
	"fmt"
	"os"

	"graphstudy/internal/core"
	"graphstudy/internal/gen"
	"graphstudy/internal/perfmodel"
	"graphstudy/internal/store"
	"graphstudy/internal/trace"
)

func main() {
	var (
		appName  = flag.String("app", "bfs", "workload: bfs, cc, ktruss, pr, sssp, tc")
		sysName  = flag.String("sys", "ls", "system: SS, GB, or LS")
		variant  = flag.String("variant", "", "variant: ls-sv, ls-soa, ls-notile, gb-res, gb-sort, gb-ll, fused")
		gname    = flag.String("graph", "rmat22", "input graph (see graphgen for the list)")
		scale    = flag.String("scale", "bench", "input scale: test or bench")
		threads  = flag.Int("threads", 4, "worker threads")
		timeout  = flag.Duration("timeout", 0, "per-run timeout (0 = none)")
		counters = flag.Bool("counters", false, "collect software performance counters (forces 1 thread)")
		verifyIt = flag.Bool("verify", false, "check the answer against the serial reference")
		storeDir = flag.String("store", "", "dataset store directory (serves imported datasets, caches generated ones)")
		trFile   = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the run to this file and print an operator summary")
	)
	flag.Parse()

	app, err := core.ParseApp(*appName)
	exitOn(err)
	sys, err := core.ParseSystem(*sysName)
	exitOn(err)
	v, err := core.ParseVariant(*variant)
	exitOn(err)
	if !core.ValidVariant(app, sys, v) {
		exitOn(fmt.Errorf("variant %q is not valid for %v on %v", v, app, sys))
	}
	sc, err := gen.ParseScale(*scale)
	exitOn(err)

	var in *gen.Input
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		exitOn(err)
		reg := store.NewRegistry(store.RegistryConfig{Store: st})
		in, err = reg.Input(*gname)
		exitOn(err)
		// Load (or generate-and-persist) through the registry so the run's
		// Prepare call reuses the stored graph instead of regenerating.
		h, err := reg.Acquire(*gname, sc)
		exitOn(err)
		defer h.Release()
	} else {
		in, err = gen.ByName(*gname)
		exitOn(err)
	}

	spec := core.RunSpec{
		App: app, System: sys, Variant: v,
		Input: in, Scale: sc, Threads: *threads, Timeout: *timeout,
	}
	var tr *trace.Trace
	if *trFile != "" {
		tr = trace.New()
		spec.Trace = tr
	}

	fmt.Fprintf(os.Stderr, "preparing %s at %s scale...\n", in.Name, sc)
	var res core.Result
	if *counters {
		spec.Threads = 1
		var cnt perfmodel.Counters
		cnt = perfmodel.Collect(func() { res = core.Run(spec) })
		report(res)
		emitTrace(tr, *trFile)
		fmt.Printf("instructions: %d\n", cnt.Instructions)
		fmt.Printf("loads: %d stores: %d\n", cnt.Loads, cnt.Stores)
		for i, a := range cnt.LevelAccesses {
			fmt.Printf("L%d accesses: %d\n", i+1, a)
		}
		fmt.Printf("DRAM accesses: %d\n", cnt.DRAM)
		fmt.Printf("modeled energy: %.3g J\n", cnt.EnergyJoules())
		return
	}
	if *verifyIt {
		var err error
		res, err = core.RunVerified(spec)
		report(res)
		emitTrace(tr, *trFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verification FAILED:", err)
			os.Exit(1)
		}
		if _, ok := core.ReferenceCheck(spec); ok {
			fmt.Println("verified against serial reference")
		} else {
			fmt.Println("no digest-exact reference for this spec; skipped")
		}
		return
	}
	res = core.Run(spec)
	report(res)
	emitTrace(tr, *trFile)
	if res.Outcome != core.OK {
		os.Exit(1)
	}
}

// emitTrace persists the run's trace as Chrome trace-event JSON and prints
// the per-operator summary to stderr. No-op when tracing is off.
func emitTrace(tr *trace.Trace, path string) {
	if tr == nil {
		return
	}
	f, err := os.Create(path)
	exitOn(err)
	err = tr.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	exitOn(err)
	fmt.Fprintf(os.Stderr, "trace: %s (load in chrome://tracing or https://ui.perfetto.dev)\n", path)
	exitOn(tr.Summary().WriteText(os.Stderr))
}

func report(res core.Result) {
	fmt.Printf("%s %s%s on %s: %s\n", res.Spec.App, res.Spec.System,
		variantSuffix(res.Spec.Variant), res.Spec.Input.Name, res.Outcome)
	if res.Err != nil {
		fmt.Printf("error: %v\n", res.Err)
		return
	}
	if res.Outcome == core.OK {
		fmt.Printf("time: %s s\n", core.Elapsed(res.Elapsed))
		fmt.Printf("answer: %s (digest %x)\n", res.Value, res.Check)
		fmt.Printf("allocated: %.1f MB", float64(res.AllocBytes)/1e6)
		if res.Rounds > 0 {
			fmt.Printf("  rounds: %d", res.Rounds)
		}
		fmt.Println()
	}
}

func variantSuffix(v core.Variant) string {
	if v == core.VDefault {
		return ""
	}
	return fmt.Sprintf(" (%s)", v)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphstudy:", err)
		os.Exit(2)
	}
}
