// Command graphgen generates and inspects the study's input graphs.
//
// Usage:
//
//	graphgen                 # print Table I properties of the whole suite
//	graphgen -graph rmat22   # one graph only
//	graphgen -scale test     # test-scale inputs
//	graphgen -out dir        # also write GSG1 binaries into dir
//	graphgen -graph rmat22 -o rmat22.gsg   # one checksummed GSG2 artifact
//	graphgen -list           # print the catalog without generating anything
//
// -o writes through the dataset-store GSG2 writer (per-section CRC32
// checksums + provenance metadata), so the file is a reusable artifact:
// `graphpack import` it into any store, or serve it straight to graphd.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"graphstudy/internal/gen"
	"graphstudy/internal/graph"
	"graphstudy/internal/store"
)

func main() {
	var (
		name  = flag.String("graph", "", "generate only this graph (default: whole suite)")
		scale = flag.String("scale", "bench", "input scale: test or bench")
		out   = flag.String("out", "", "write GSG1 binary files into this directory")
		gsg2  = flag.String("o", "", "write one checksummed GSG2 file (requires -graph); see graphpack(1)")
		list  = flag.Bool("list", false, "print the graph catalog (names + descriptions) and exit")
	)
	flag.Parse()

	sc, err := gen.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *gsg2 != "" && *name == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -o exports a single graph; name one with -graph")
		os.Exit(2)
	}

	if *list {
		for _, e := range gen.Catalog() {
			weighted := ""
			if e.Weighted {
				weighted = " (weighted)"
			}
			fmt.Printf("%-12s %s%s\n", e.Name, e.Description, weighted)
		}
		return
	}

	inputs := gen.Suite()
	if *name != "" {
		in, err := gen.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		inputs = []*gen.Input{in}
	}

	for _, in := range inputs {
		t0 := time.Now()
		g := in.Build(sc)
		st := graph.ComputeStats(in.Name, g)
		fmt.Printf("%-12s |V|=%8d |E|=%9d deg=%6.1f DoutMax=%7d DinMax=%7d diam=%5d size=%6.1fMB gen=%v\n",
			st.Name, st.NumNodes, st.NumEdges, st.AvgDegree, st.MaxOutDegree, st.MaxInDegree,
			st.ApproxDiam, float64(st.CSRSizeBytes)/1e6, time.Since(t0).Round(time.Millisecond))
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*out, fmt.Sprintf("%s-%s.gsg", in.Name, sc))
			if err := graph.SaveFile(path, g); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n", path)
		}
		if *gsg2 != "" {
			meta := map[string]string{
				"source": "graphgen", "graph": in.Name,
				"scale": sc.String(), "archetype": in.Archetype,
			}
			if err := store.SaveGSG2(*gsg2, g, meta); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s (GSG2, checksummed)\n", *gsg2)
		}
	}
}
