// Command graphpack manages dataset stores: the persistent, checksummed
// graph collections that graphd -data, graphstudy -store, and gentables
// -store serve from.
//
// Usage:
//
//	graphpack -store dir import <name> <file>   # ingest .mtx/.el/.gsg/.gsg2 (sniffed)
//	graphpack -store dir export <name> <file>   # re-encode by extension, or byte-exact .gsg2
//	graphpack -store dir ls                     # list datasets with sizes and checksums
//	graphpack -store dir verify [name...]       # recompute checksums + full decode
//	graphpack -store dir gen <graph> [scale]    # generate a suite graph into the store
//	graphpack -store dir rm <name>              # remove a dataset (GCs unshared objects)
//	graphpack -store dir append <name> <op>...  # commit a mutation batch to the delta log
//	graphpack -store dir compact <name>         # fold pending deltas into the base object
//
// Import sniffs the input format (GSG2, GSG1, %%MatrixMarket, else
// whitespace edge list); -format overrides. Stored objects are
// content-addressed GSG2 files with per-section CRC32 checksums, so verify
// detects any single flipped byte on disk.
//
// Append ops are "add:src,dst[,w]" (weight defaults to 1) or "del:src,dst";
// the whole argument list commits as one atomic batch at a single new epoch.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphstudy/internal/gen"
	"graphstudy/internal/store"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: graphpack [-store dir] <command> [args]

commands:
  import <name> <file> [-format auto|gsg2|gsg1|mtx|el]
  export <name> <file>
  ls
  verify [name...]
  gen <graph> [test|bench]
  rm <name>
  append <name> <add:src,dst[,w] | del:src,dst>...
  compact <name>`)
	os.Exit(2)
}

func main() {
	dir := flag.String("store", "datasets", "dataset store directory")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}

	cmd, args := args[0], args[1:]
	switch cmd {
	case "import":
		cmdImport(st, args)
	case "export":
		cmdExport(st, args)
	case "ls":
		cmdLs(st, args)
	case "verify":
		cmdVerify(st, args)
	case "gen":
		cmdGen(st, args)
	case "rm":
		cmdRm(st, args)
	case "append":
		cmdAppend(st, args)
	case "compact":
		cmdCompact(st, args)
	default:
		fmt.Fprintf(os.Stderr, "graphpack: unknown command %q\n", cmd)
		usage()
	}
}

func cmdImport(st *store.Store, args []string) {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	formatName := fs.String("format", "auto", "input format: auto, gsg2, gsg1, mtx, el")
	_ = fs.Parse(restFlags(args, 2)) // ExitOnError: Parse never returns an error
	if len(args) < 2 {
		fatal(fmt.Errorf("import wants <name> <file>"))
	}
	format, err := store.ParseFormat(*formatName)
	if err != nil {
		fatal(err)
	}
	e, err := st.Import(args[0], args[1], format)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("imported %s: %d nodes, %d edges, %s as %s (%s)\n",
		e.Name, e.Nodes, e.Edges, store.FormatBytes(e.Bytes), e.File, e.Meta["source-format"])
}

func cmdExport(st *store.Store, args []string) {
	if len(args) != 2 {
		fatal(fmt.Errorf("export wants <name> <file>"))
	}
	if err := st.Export(args[0], args[1]); err != nil {
		fatal(err)
	}
	fmt.Printf("exported %s to %s\n", args[0], args[1])
}

func cmdLs(st *store.Store, _ []string) {
	entries := st.List()
	if len(entries) == 0 {
		fmt.Println("(empty store)")
		return
	}
	fmt.Printf("%-24s %10s %12s %8s %7s  %-16s %s\n", "NAME", "NODES", "EDGES", "SIZE", "EPOCH", "SHA256", "FILE")
	for _, e := range entries {
		epochs := "-"
		if top, err := st.Epoch(e.Name); err == nil && top > 0 {
			epochs = fmt.Sprintf("%d..%d", e.BaseEpoch, top)
		}
		fmt.Printf("%-24s %10d %12d %8s %7s  %-16s %s\n",
			e.Name, e.Nodes, e.Edges, store.FormatBytes(e.Bytes), epochs, e.SHA256[:16], e.File)
	}
}

func cmdVerify(st *store.Store, args []string) {
	names := args
	if len(names) == 0 {
		for _, e := range st.List() {
			names = append(names, e.Name)
		}
	}
	bad := 0
	for _, name := range names {
		if err := st.Verify(name); err != nil {
			fmt.Printf("FAIL %s: %v\n", name, err)
			bad++
			continue
		}
		fmt.Printf("ok   %s\n", name)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "graphpack: %d of %d datasets failed verification\n", bad, len(names))
		os.Exit(1)
	}
}

// cmdGen generates a suite graph and persists it under the same
// "<name>@<scale>" key the registry uses, so a later graphd/graphstudy run
// is a disk hit.
func cmdGen(st *store.Store, args []string) {
	if len(args) < 1 || len(args) > 2 {
		fatal(fmt.Errorf("gen wants <graph> [test|bench]"))
	}
	in, err := gen.ByName(args[0])
	if err != nil {
		fatal(err)
	}
	sc := gen.ScaleBench
	if len(args) == 2 {
		if sc, err = gen.ParseScale(args[1]); err != nil {
			fatal(err)
		}
	}
	key := fmt.Sprintf("%s@%s", in.Name, sc)
	if st.Has(key) {
		fmt.Printf("%s already stored\n", key)
		return
	}
	g := in.Build(sc)
	e, err := st.Put(key, g, map[string]string{
		"source": "graphpack gen", "graph": in.Name,
		"scale": sc.String(), "archetype": in.Archetype,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %s: %d nodes, %d edges, %s\n",
		e.Name, e.Nodes, e.Edges, store.FormatBytes(e.Bytes))
}

func cmdRm(st *store.Store, args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("rm wants <name>"))
	}
	if err := st.Remove(args[0]); err != nil {
		fatal(err)
	}
	fmt.Printf("removed %s\n", args[0])
}

// cmdAppend commits one mutation batch to a dataset's delta log. All ops
// land together at a single new epoch — the unit snapshots and incremental
// runs address.
func cmdAppend(st *store.Store, args []string) {
	if len(args) < 2 {
		fatal(fmt.Errorf("append wants <name> <add:src,dst[,w] | del:src,dst>..."))
	}
	ops := make([]store.DeltaOp, 0, len(args)-1)
	for _, a := range args[1:] {
		op, err := parseOp(a)
		if err != nil {
			fatal(err)
		}
		ops = append(ops, op)
	}
	epoch, err := st.AppendDelta(args[0], ops)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("appended %d ops to %s at epoch %d\n", len(ops), args[0], epoch)
}

// parseOp decodes one CLI mutation op: "add:src,dst[,w]" or "del:src,dst".
func parseOp(s string) (store.DeltaOp, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok || (kind != "add" && kind != "del") {
		return store.DeltaOp{}, fmt.Errorf("bad op %q: want add:src,dst[,w] or del:src,dst", s)
	}
	fields := strings.Split(rest, ",")
	if kind == "del" && len(fields) != 2 || kind == "add" && (len(fields) < 2 || len(fields) > 3) {
		return store.DeltaOp{}, fmt.Errorf("bad op %q: wrong field count", s)
	}
	var v [3]uint64
	v[2] = 1 // default weight
	for i, f := range fields {
		n, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return store.DeltaOp{}, fmt.Errorf("bad op %q: %v", s, err)
		}
		v[i] = n
	}
	return store.DeltaOp{
		Del: kind == "del", Src: uint32(v[0]), Dst: uint32(v[1]), W: uint32(v[2]),
	}, nil
}

// cmdCompact folds a dataset's pending delta batches into a fresh base
// object; the old object is GC'd when unshared, and history below the new
// base epoch stops being addressable.
func cmdCompact(st *store.Store, args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("compact wants <name>"))
	}
	e, err := st.Compact(args[0])
	if err != nil {
		fatal(err)
	}
	fmt.Printf("compacted %s: base epoch %d, %d nodes, %d edges, %s\n",
		e.Name, e.BaseEpoch, e.Nodes, e.Edges, store.FormatBytes(e.Bytes))
}

// restFlags returns the arguments after the first n positionals, for
// subcommands that take trailing flags (graphpack import a b -format el).
func restFlags(args []string, n int) []string {
	if len(args) <= n {
		return nil
	}
	return args[n:]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphpack:", err)
	os.Exit(1)
}
