// Quickstart: build a small graph, express BFS both ways — through the
// GraphBLAS matrix API (internal/grb + internal/lagraph) and through the
// Galois-style graph API (internal/graph + internal/lonestar) — and check
// they agree. This is the study's Figure 1 in miniature.
package main

import (
	"fmt"
	"log"

	"graphstudy/internal/graph"
	"graphstudy/internal/grb"
	"graphstudy/internal/lagraph"
	"graphstudy/internal/lonestar"
)

func main() {
	// A little social network: 0 follows 1 and 2, etc.
	g := graph.FromEdges(6, [][2]uint32{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
	})

	// --- Matrix route: frontier vector times adjacency matrix per round.
	A := grb.BoolMatrixFromGraph(g)
	ctx := grb.NewGaloisBLASContext(2)
	dist, rounds, err := lagraph.BFS(ctx, A, 0)
	if err != nil {
		log.Fatal(err)
	}
	matrixLevels := lagraph.BFSLevels(dist)
	fmt.Printf("matrix API (LAGraph/GaloisBLAS): levels=%v rounds=%d\n", matrixLevels, rounds)

	// --- Graph route: fused worklist loop per round.
	graphLevels, rounds, err := lonestar.BFS(g, 0, lonestar.Options{Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph API  (Lonestar/Galois):    levels=%v rounds=%d\n", graphLevels, rounds)

	for i := range matrixLevels {
		if matrixLevels[i] != graphLevels[i] {
			log.Fatalf("APIs disagree at vertex %d", i)
		}
	}
	fmt.Println("both APIs agree: vertex 5 is", matrixLevels[5], "hops from vertex 0")

	// The same matrix machinery generalizes: one min-plus product performs
	// one round of shortest-path relaxation.
	W, err := grb.BuildMatrix(3, 3, []int{0, 0, 1}, []int{1, 2, 2}, []uint32{5, 20, 6}, nil)
	if err != nil {
		log.Fatal(err)
	}
	u := grb.NewVector[uint32](3, grb.Sorted)
	u.SetElement(0, 0)
	w := grb.NewVector[uint32](3, grb.Sorted)
	if err := grb.VxM(ctx, w, nil, nil, grb.MinPlus[uint32](), u, W, grb.Desc{Replace: true}); err != nil {
		log.Fatal(err)
	}
	d2, _ := w.ExtractElement(2)
	fmt.Println("one min-plus relaxation from vertex 0 reaches vertex 2 at cost", d2)
}
