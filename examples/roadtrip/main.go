// Roadtrip: single-source shortest paths on a road-network analog, the
// workload where the study found its most dramatic gap (over 100x on
// road-USA). High diameter forces the bulk-synchronous matrix formulation
// through thousands of rounds, while the asynchronous graph formulation
// propagates distances through a single priority worklist.
package main

import (
	"fmt"
	"log"
	"time"

	"graphstudy/internal/gen"
	"graphstudy/internal/grb"
	"graphstudy/internal/lagraph"
	"graphstudy/internal/lonestar"
)

func main() {
	in, err := gen.ByName("road-USA-W")
	if err != nil {
		log.Fatal(err)
	}
	g := in.Build(gen.ScaleBench)
	src := in.Source(g)
	fmt.Printf("%s (%s): %d intersections, %d road segments, delta=%d\n",
		in.Name, gen.Describe(in.Name), g.NumNodes, g.NumEdges(), in.Delta())

	// Matrix API: bulk-synchronous delta-stepping.
	A := grb.WeightMatrixFromGraph(g)
	ctx := grb.NewGaloisBLASContext(4)
	t0 := time.Now()
	gb, err := lagraph.SSSP(ctx, A, int(src), in.Delta())
	if err != nil {
		log.Fatal(err)
	}
	tGB := time.Since(t0)

	// Graph API: asynchronous delta-stepping on a priority worklist.
	opt := lonestar.DefaultSSSPOptions()
	opt.Threads = 4
	opt.Delta = in.Delta()
	t0 = time.Now()
	ls, applied, err := lonestar.SSSP(g, src, opt)
	if err != nil {
		log.Fatal(err)
	}
	tLS := time.Since(t0)

	gbDist := lagraph.Distances(gb.Dist)
	for i := range ls {
		if ls[i] != gbDist[i] {
			log.Fatalf("distance mismatch at %d: %d vs %d", i, ls[i], gbDist[i])
		}
	}

	fmt.Printf("matrix API : %8.1f ms  (%d bulk-synchronous rounds, %d buckets)\n",
		tGB.Seconds()*1e3, gb.Rounds, gb.Buckets)
	fmt.Printf("graph API  : %8.1f ms  (no rounds; %d asynchronous relaxations)\n",
		tLS.Seconds()*1e3, applied)
	fmt.Printf("identical distances; graph API speedup: %.1fx\n",
		float64(tGB)/float64(tLS))
	fmt.Println("the matrix API cannot express the single-worklist algorithm —")
	fmt.Println("rounds are intrinsic to bulk operations (study, section II-D)")
}
