// Pagerank: rank pages of a web-crawl analog with the matrix API's
// topology-driven power iteration, its residual reformulation, and the graph
// API's fused residual loop — the ladder of Figure 3a. Prints the top pages
// and per-variant timings.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"graphstudy/internal/gen"
	"graphstudy/internal/grb"
	"graphstudy/internal/lagraph"
	"graphstudy/internal/lonestar"
)

func main() {
	in, err := gen.ByName("indochina04")
	if err != nil {
		log.Fatal(err)
	}
	g := in.Build(gen.ScaleBench)
	fmt.Printf("%s (%s): %d pages, %d links\n", in.Name, gen.Describe(in.Name), g.NumNodes, g.NumEdges())

	A := grb.FloatMatrixFromGraph(g)
	ctx := grb.NewGaloisBLASContext(4)
	gbOpt := lagraph.DefaultPageRankOptions()

	t0 := time.Now()
	r, err := lagraph.PageRank(ctx, A, gbOpt)
	if err != nil {
		log.Fatal(err)
	}
	tGB := time.Since(t0)
	gbRanks := lagraph.Ranks(r)

	t0 = time.Now()
	rres, err := lagraph.PageRankResidual(ctx, A, gbOpt)
	if err != nil {
		log.Fatal(err)
	}
	tGBRes := time.Since(t0)

	lsOpt := lonestar.DefaultPageRankOptions()
	lsOpt.Threads = 4
	t0 = time.Now()
	lsRanks, err := lonestar.PageRankResidual(g, lsOpt, false)
	if err != nil {
		log.Fatal(err)
	}
	tLS := time.Since(t0)

	t0 = time.Now()
	if _, err := lonestar.PageRankResidual(g, lsOpt, true); err != nil {
		log.Fatal(err)
	}
	tLSSoA := time.Since(t0)

	fmt.Printf("gb     (topology-driven, matrix API): %7.1f ms\n", tGB.Seconds()*1e3)
	fmt.Printf("gb-res (residual, matrix API):        %7.1f ms\n", tGBRes.Seconds()*1e3)
	fmt.Printf("ls-soa (residual, graph API, SoA):    %7.1f ms\n", tLSSoA.Seconds()*1e3)
	fmt.Printf("ls     (residual, graph API, AoS):    %7.1f ms\n", tLS.Seconds()*1e3)

	// Residual variants share a formulation; sanity-check agreement.
	maxDiff := 0.0
	for i := range lsRanks {
		d := lsRanks[i] - ranksAt(rres, i)
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("gb-res vs ls max rank difference: %.2e\n", maxDiff)

	type page struct {
		id   int
		rank float64
	}
	top := make([]page, len(gbRanks))
	for i, v := range gbRanks {
		top[i] = page{i, v}
	}
	sort.Slice(top, func(a, b int) bool { return top[a].rank > top[b].rank })
	fmt.Println("top 5 pages by rank:")
	for _, p := range top[:5] {
		fmt.Printf("  page %6d  rank %.6f  in-degree %d\n", p.id, p.rank, g.InDegree(uint32(p.id)))
	}
}

func ranksAt(v *grb.Vector[float64], i int) float64 {
	val, _ := v.ExtractElement(i)
	return val
}
