// Keyactors: the study's opening motivation — "betweenness centrality can be
// used to find key actors in terrorist networks" — run on a social-network
// analog in both APIs. Betweenness is an extension beyond the paper's six
// workloads, and it exhibits the same limitation pattern: the matrix
// formulation must materialize one frontier vector per BFS level so the
// backward sweep can replay them; the graph formulation just keeps the level
// stamps.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"graphstudy/internal/gen"
	"graphstudy/internal/grb"
	"graphstudy/internal/lagraph"
	"graphstudy/internal/lonestar"
	"graphstudy/internal/verify"
)

func main() {
	in, err := gen.ByName("twitter40")
	if err != nil {
		log.Fatal(err)
	}
	g := in.Build(gen.ScaleBench)
	fmt.Printf("%s (%s): %d actors, %d directed ties\n", in.Name, gen.Describe(in.Name), g.NumNodes, g.NumEdges())

	// Batch of four sources, like LAGraph's BC demo.
	sources := []uint32{0, g.MaxOutDegreeVertex(), 100, 200}

	// Graph API.
	t0 := time.Now()
	lsBC, err := lonestar.BC(g, sources, lonestar.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	tLS := time.Since(t0)

	// Matrix API (the transpose is materialized, as LAGraph does).
	A := grb.BoolMatrixFromGraph(g)
	AT := A.Transpose()
	srcs := make([]int, len(sources))
	for i, s := range sources {
		srcs[i] = int(s)
	}
	ctx := grb.NewGaloisBLASContext(4)
	t0 = time.Now()
	gbBC, err := lagraph.BC(ctx, A, AT, srcs)
	if err != nil {
		log.Fatal(err)
	}
	tGB := time.Since(t0)

	gb := lagraph.Ranks(gbBC)
	if d := verify.MaxAbsDiff(lsBC, gb); d > 1e-6 {
		log.Fatalf("APIs disagree: max diff %g", d)
	}
	fmt.Printf("graph API : %7.1f ms\n", tLS.Seconds()*1e3)
	fmt.Printf("matrix API: %7.1f ms (materializes one frontier per BFS level)\n", tGB.Seconds()*1e3)

	type actor struct {
		id int
		bc float64
	}
	all := make([]actor, len(lsBC))
	for i, v := range lsBC {
		all[i] = actor{i, v}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].bc > all[b].bc })
	fmt.Println("key actors (highest betweenness):")
	for _, a := range all[:5] {
		fmt.Printf("  actor %6d  centrality %10.1f  degree %d\n", a.id, a.bc, g.OutDegree(uint32(a.id)))
	}
}
