// Communities: analyze a social-network analog — find its connected
// components with Afforest (the sampled, fine-grained algorithm the matrix
// API cannot express) and measure its clustering with triangle counting and
// a k-truss, comparing the matrix and graph formulations.
package main

import (
	"fmt"
	"log"
	"time"

	"graphstudy/internal/gen"
	"graphstudy/internal/grb"
	"graphstudy/internal/lagraph"
	"graphstudy/internal/lonestar"
	"graphstudy/internal/verify"
)

func main() {
	in, err := gen.ByName("twitter40")
	if err != nil {
		log.Fatal(err)
	}
	g := in.Build(gen.ScaleBench)
	sym := g.Symmetrize()
	sym.SortAdjacency()
	fmt.Printf("%s (%s): %d users, %d (directed) follows, %d undirected edges\n",
		in.Name, gen.Describe(in.Name), g.NumNodes, g.NumEdges(), sym.NumEdges()/2)

	opt := lonestar.Options{Threads: 4}

	// Connected components: Afforest vs FastSV.
	t0 := time.Now()
	labels, err := lonestar.CCAfforest(sym, opt)
	if err != nil {
		log.Fatal(err)
	}
	tAff := time.Since(t0)
	ctx := grb.NewGaloisBLASContext(4)
	Ab := grb.MatrixFromGraph(sym, func(uint32) uint32 { return 1 })
	t0 = time.Now()
	f, rounds, err := lagraph.CCFastSV(ctx, Ab)
	if err != nil {
		log.Fatal(err)
	}
	tSV := time.Since(t0)
	if !verify.SamePartition(labels, lagraph.Labels(f)) {
		log.Fatal("component algorithms disagree")
	}
	fmt.Printf("components: %d\n", verify.NumComponents(labels))
	fmt.Printf("  afforest (graph API, sampled):  %7.1f ms\n", tAff.Seconds()*1e3)
	fmt.Printf("  fastsv   (matrix API, %d rounds): %7.1f ms\n", rounds, tSV.Seconds()*1e3)

	// Triangles: fused listing vs masked SpGEMM.
	sorted := lonestar.SortByDegree(sym)
	t0 = time.Now()
	tls, err := lonestar.TriangleCount(sorted, opt)
	if err != nil {
		log.Fatal(err)
	}
	tLS := time.Since(t0)
	Ai := grb.MatrixFromGraph(sym, func(uint32) int64 { return 1 })
	t0 = time.Now()
	tgb, err := lagraph.TriangleCount(ctx, Ai, lagraph.TCSandiaDot)
	if err != nil {
		log.Fatal(err)
	}
	tGB := time.Since(t0)
	if tls != tgb {
		log.Fatalf("triangle counts disagree: %d vs %d", tls, tgb)
	}
	fmt.Printf("triangles: %d\n", tls)
	fmt.Printf("  listing  (graph API, no materialization): %7.1f ms\n", tLS.Seconds()*1e3)
	fmt.Printf("  sandia   (matrix API, L/U'/C matrices):   %7.1f ms\n", tGB.Seconds()*1e3)

	// Cohesive core: the 5-truss.
	res, err := lonestar.KTruss(sym, 5, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5-truss: %d directed edges remain after %d peel rounds\n", res.Edges, res.Rounds)
}
